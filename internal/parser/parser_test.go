package parser

import (
	"strings"
	"testing"

	"debugtuner/internal/ast"
)

func TestParseFunctionShapes(t *testing.T) {
	prog, err := ParseString("t", `
var g: int = 5;
var a: int[] = new int[10];
func none() { }
func one(x: int): int { return x; }
func two(x: int, a: int[]): void { print(x); }
func main() {
	var v: int = one(g) + a[0];
	if (v > 0) { v = v - 1; } else if (v < 0) { v = 0; } else { print(v); }
	while (v < 10) { v = v + 1; }
	for (var i: int = 0; i < 3; i = i + 1) { a[i] = i; }
	for (; v > 0; ) { v = v - 1; break; }
	print(v);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 || len(prog.Funcs) != 4 {
		t.Fatalf("got %d globals, %d funcs", len(prog.Globals), len(prog.Funcs))
	}
	if prog.Func("one").Result != ast.TypeInt {
		t.Error("one should return int")
	}
	if prog.Func("two").Result != ast.TypeVoid {
		t.Error("two should return void")
	}
	if got := len(prog.Func("main").Body.Stmts); got != 6 {
		t.Errorf("main has %d statements, want 6", got)
	}
}

func TestPrecedence(t *testing.T) {
	prog, err := ParseString("t", `func f(): int { return 1 + 2 * 3 == 7 && 4 < 5 | 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ast.Return)
	// Top must be && (loosest present).
	top, ok := ret.Value.(*ast.Binary)
	if !ok || top.Op != "&&" {
		t.Fatalf("top operator = %T %v", ret.Value, ret.Value)
	}
	lhs := top.X.(*ast.Binary)
	if lhs.Op != "==" {
		t.Errorf("lhs of && = %q, want ==", lhs.Op)
	}
	mul := lhs.X.(*ast.Binary).Y.(*ast.Binary)
	if mul.Op != "*" {
		t.Errorf("inner = %q, want *", mul.Op)
	}
	rhs := top.Y.(*ast.Binary)
	if rhs.Op != "|" {
		t.Errorf("rhs of && = %q, want |", rhs.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func f( {}",
		"func f() { var x int = 1; }",
		"func f() { x = ; }",
		"func f() { if x { } }",
		"var x: float;",
		"func f(): int[] { }",
		"}{",
		"func f() { return 1 }",
	}
	for _, src := range bad {
		if _, err := ParseString("t", src); err == nil {
			t.Errorf("%q: expected a parse error", src)
		}
	}
}

// TestParserAlwaysTerminates (regression): error recovery must make
// progress on arbitrarily misplaced tokens — two infinite-loop bugs were
// found here during development (a stray func inside a block, and
// statements at the top level).
func TestParserAlwaysTerminates(t *testing.T) {
	nasty := []string{
		"func f() { func g() {} }",
		"x = 1;\ny = 2;",
		"return 5;",
		"if (1) {}",
		"func f() { } } } }",
		strings.Repeat("] ", 50),
		"var v: int = 1; while (v) {}",
	}
	for _, src := range nasty {
		done := make(chan struct{})
		go func() {
			ParseString("t", src)
			close(done)
		}()
		select {
		case <-done:
		default:
			// Give it a moment synchronously; channels in tests without
			// timers would hang the test anyway if the parser loops.
			<-done
		}
	}
}

func TestPositionsRecorded(t *testing.T) {
	prog, err := ParseString("t", "func f() {\n\tprint(1);\n}")
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Funcs[0].Body.Stmts[0].Pos()
	if p.Line != 2 {
		t.Errorf("print at line %d, want 2", p.Line)
	}
	if prog.Funcs[0].EndPos.Line != 3 {
		t.Errorf("closing brace at line %d, want 3", prog.Funcs[0].EndPos.Line)
	}
}
