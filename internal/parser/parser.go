// Package parser implements a recursive-descent parser for MiniC.
//
// Grammar (informal):
//
//	program   = { global | func } .
//	global    = "var" ident ":" type [ "=" expr ] ";" .
//	func      = "func" ident "(" [ param { "," param } ] ")" [ ":" rettype ] block .
//	param     = ident ":" type .
//	type      = "int" [ "[" "]" ] .
//	block     = "{" { stmt } "}" .
//	stmt      = varDecl | assignOrExpr | print | if | while | for
//	          | "break" ";" | "continue" ";" | "return" [ expr ] ";" | block .
//	expr      = orExpr .
//
// Operator precedence, loosest to tightest:
// || , && , |, ^, &, == !=, < <= > >=, << >>, + -, * / %, unary - !.
package parser

import (
	"fmt"

	"debugtuner/internal/ast"
	"debugtuner/internal/lexer"
	"debugtuner/internal/source"
)

// Parser holds parse state for one file.
type Parser struct {
	file   *source.File
	toks   []lexer.Token
	pos    int
	errors source.ErrorList
}

// Parse lexes and parses the file into a Program. It returns the program
// together with any diagnostics; the program is nil when parsing could not
// produce a usable tree.
func Parse(f *source.File) (*ast.Program, error) {
	lx := lexer.New(f)
	toks := lx.All()
	p := &Parser{file: f, toks: toks}
	p.errors = append(p.errors, lx.Errors()...)
	prog := p.parseProgram()
	if err := p.errors.Err(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseString is a convenience wrapper for tests and tools.
func ParseString(name, src string) (*ast.Program, error) {
	return Parse(source.NewFile(name, []byte(src)))
}

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *Parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(pos source.Pos, format string, args ...any) {
	p.errors = append(p.errors, &source.Error{
		File: p.file.Name,
		Pos:  pos,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (p *Parser) expect(k lexer.Kind) lexer.Token {
	if p.cur().Kind == k {
		return p.advance()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur().Kind)
	return lexer.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) accept(k lexer.Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

// sync skips tokens until a likely statement boundary, bounding error
// cascades.
func (p *Parser) sync() {
	for {
		switch p.cur().Kind {
		case lexer.EOF, lexer.RBrace, lexer.KwFunc, lexer.KwVar,
			lexer.KwIf, lexer.KwWhile, lexer.KwFor, lexer.KwReturn:
			return
		case lexer.Semi:
			p.advance()
			return
		}
		p.advance()
	}
}

func (p *Parser) parseProgram() *ast.Program {
	prog := &ast.Program{File: p.file}
	for p.cur().Kind != lexer.EOF {
		switch p.cur().Kind {
		case lexer.KwVar:
			d := p.parseVarDecl()
			prog.Globals = append(prog.Globals, &ast.GlobalDecl{Decl: d})
		case lexer.KwFunc:
			prog.Funcs = append(prog.Funcs, p.parseFunc())
		default:
			p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur().Kind)
			// sync stops at statement starters that are not valid at
			// the top level; always consume at least one token so the
			// declaration loop makes progress.
			before := p.pos
			p.sync()
			if p.pos == before && p.cur().Kind != lexer.EOF {
				p.advance()
			}
		}
	}
	return prog
}

func (p *Parser) parseType() ast.Type {
	p.expect(lexer.KwInt)
	if p.accept(lexer.LBrack) {
		p.expect(lexer.RBrack)
		return ast.TypeArray
	}
	return ast.TypeInt
}

// parseVarDecl parses "var name: type [= expr];".
func (p *Parser) parseVarDecl() *ast.VarDecl {
	kw := p.expect(lexer.KwVar)
	name := p.expect(lexer.Ident)
	p.expect(lexer.Colon)
	typ := p.parseType()
	var init ast.Expr
	if p.accept(lexer.Assign) {
		init = p.parseExpr()
	}
	p.expect(lexer.Semi)
	return &ast.VarDecl{Name: name.Text, Type: typ, Init: init, PosVal: kw.Pos}
}

func (p *Parser) parseFunc() *ast.FuncDecl {
	kw := p.expect(lexer.KwFunc)
	name := p.expect(lexer.Ident)
	p.expect(lexer.LParen)
	var params []*ast.Param
	for p.cur().Kind != lexer.RParen && p.cur().Kind != lexer.EOF {
		pn := p.expect(lexer.Ident)
		p.expect(lexer.Colon)
		pt := p.parseType()
		params = append(params, &ast.Param{Name: pn.Text, Type: pt, PosVal: pn.Pos})
		if !p.accept(lexer.Comma) {
			break
		}
	}
	p.expect(lexer.RParen)
	result := ast.TypeVoid
	if p.accept(lexer.Colon) {
		if p.accept(lexer.KwVoid) {
			result = ast.TypeVoid
		} else {
			result = p.parseType()
			if result == ast.TypeArray {
				p.errorf(name.Pos, "functions cannot return arrays")
				result = ast.TypeInt
			}
		}
	}
	body := p.parseBlock()
	return &ast.FuncDecl{
		Name: name.Text, Params: params, Result: result, Body: body,
		PosVal: kw.Pos, EndPos: body.EndPos,
	}
}

func (p *Parser) parseBlock() *ast.Block {
	lb := p.expect(lexer.LBrace)
	blk := &ast.Block{PosVal: lb.Pos}
	for p.cur().Kind != lexer.RBrace && p.cur().Kind != lexer.EOF {
		blk.Stmts = append(blk.Stmts, p.parseStmt())
	}
	rb := p.expect(lexer.RBrace)
	blk.EndPos = rb.Pos
	return blk
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case lexer.KwVar:
		return p.parseVarDecl()
	case lexer.KwPrint:
		kw := p.advance()
		p.expect(lexer.LParen)
		x := p.parseExpr()
		p.expect(lexer.RParen)
		p.expect(lexer.Semi)
		return &ast.PrintStmt{X: x, PosVal: kw.Pos}
	case lexer.KwIf:
		return p.parseIf()
	case lexer.KwWhile:
		kw := p.advance()
		p.expect(lexer.LParen)
		cond := p.parseExpr()
		p.expect(lexer.RParen)
		body := p.parseBlock()
		return &ast.While{Cond: cond, Body: body, PosVal: kw.Pos}
	case lexer.KwFor:
		return p.parseFor()
	case lexer.KwBreak:
		kw := p.advance()
		p.expect(lexer.Semi)
		return &ast.Break{PosVal: kw.Pos}
	case lexer.KwContinue:
		kw := p.advance()
		p.expect(lexer.Semi)
		return &ast.Continue{PosVal: kw.Pos}
	case lexer.KwReturn:
		kw := p.advance()
		var val ast.Expr
		if p.cur().Kind != lexer.Semi {
			val = p.parseExpr()
		}
		p.expect(lexer.Semi)
		return &ast.Return{Value: val, PosVal: kw.Pos}
	case lexer.LBrace:
		return p.parseBlock()
	case lexer.Ident:
		s := p.parseSimpleStmt()
		p.expect(lexer.Semi)
		return s
	}
	p.errorf(p.cur().Pos, "expected statement, found %s", p.cur().Kind)
	// Guarantee progress: sync may stop at a token parseStmt cannot
	// start (e.g. a stray "func" inside a block); consume it so the
	// enclosing block loop terminates.
	before := p.pos
	p.sync()
	if p.pos == before && p.cur().Kind != lexer.EOF && p.cur().Kind != lexer.RBrace {
		p.advance()
	}
	return &ast.Block{PosVal: p.cur().Pos, EndPos: p.cur().Pos}
}

// parseSimpleStmt parses an assignment or call statement without the
// trailing semicolon (shared by statement and for-clause positions).
func (p *Parser) parseSimpleStmt() ast.Stmt {
	start := p.cur()
	// Call statement: ident "(" ...
	if p.peek().Kind == lexer.LParen {
		x := p.parseExpr()
		return &ast.ExprStmt{X: x, PosVal: start.Pos}
	}
	// Otherwise an lvalue: name or name[expr]...[expr].
	nameTok := p.expect(lexer.Ident)
	name := &ast.Name{Ident: nameTok.Text, PosVal: nameTok.Pos}
	if p.cur().Kind == lexer.LBrack {
		p.advance()
		idx := p.parseExpr()
		p.expect(lexer.RBrack)
		p.expect(lexer.Assign)
		val := p.parseExpr()
		return &ast.Assign{Arr: name, Idx: idx, Value: val, PosVal: start.Pos}
	}
	p.expect(lexer.Assign)
	val := p.parseExpr()
	return &ast.Assign{Target: name, Value: val, PosVal: start.Pos}
}

func (p *Parser) parseIf() ast.Stmt {
	kw := p.expect(lexer.KwIf)
	p.expect(lexer.LParen)
	cond := p.parseExpr()
	p.expect(lexer.RParen)
	then := p.parseBlock()
	var els ast.Stmt
	if p.accept(lexer.KwElse) {
		if p.cur().Kind == lexer.KwIf {
			els = p.parseIf()
		} else {
			els = p.parseBlock()
		}
	}
	return &ast.If{Cond: cond, Then: then, Else: els, PosVal: kw.Pos}
}

func (p *Parser) parseFor() ast.Stmt {
	kw := p.expect(lexer.KwFor)
	p.expect(lexer.LParen)
	var init ast.Stmt
	if p.cur().Kind != lexer.Semi {
		if p.cur().Kind == lexer.KwVar {
			init = p.parseVarDecl() // consumes the semicolon
		} else {
			init = p.parseSimpleStmt()
			p.expect(lexer.Semi)
		}
	} else {
		p.expect(lexer.Semi)
	}
	var cond ast.Expr
	if p.cur().Kind != lexer.Semi {
		cond = p.parseExpr()
	}
	p.expect(lexer.Semi)
	var post ast.Stmt
	if p.cur().Kind != lexer.RParen {
		post = p.parseSimpleStmt()
	}
	p.expect(lexer.RParen)
	body := p.parseBlock()
	return &ast.For{Init: init, Cond: cond, Post: post, Body: body, PosVal: kw.Pos}
}

// ---- Expressions ----

// binLevels lists binary operator tiers from loosest to tightest binding.
var binLevels = [][]lexer.Kind{
	{lexer.PipePipe},
	{lexer.AmpAmp},
	{lexer.Pipe},
	{lexer.Caret},
	{lexer.Amp},
	{lexer.EqEq, lexer.NotEq},
	{lexer.Lt, lexer.Le, lexer.Gt, lexer.Ge},
	{lexer.Shl, lexer.Shr},
	{lexer.Plus, lexer.Minus},
	{lexer.Star, lexer.Slash, lexer.Percent},
}

func (p *Parser) parseExpr() ast.Expr { return p.parseBinary(0) }

func (p *Parser) parseBinary(level int) ast.Expr {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	x := p.parseBinary(level + 1)
	for {
		matched := false
		for _, k := range binLevels[level] {
			if p.cur().Kind == k {
				op := p.advance()
				y := p.parseBinary(level + 1)
				x = &ast.Binary{Op: op.Text, X: x, Y: y, PosVal: op.Pos}
				matched = true
				break
			}
		}
		if !matched {
			return x
		}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case lexer.Minus:
		op := p.advance()
		return &ast.Unary{Op: "-", X: p.parseUnary(), PosVal: op.Pos}
	case lexer.Not:
		op := p.advance()
		return &ast.Unary{Op: "!", X: p.parseUnary(), PosVal: op.Pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for p.cur().Kind == lexer.LBrack {
		lb := p.advance()
		idx := p.parseExpr()
		p.expect(lexer.RBrack)
		x = &ast.Index{Arr: x, Idx: idx, PosVal: lb.Pos}
	}
	return x
}

func (p *Parser) parsePrimary() ast.Expr {
	switch t := p.cur(); t.Kind {
	case lexer.Int:
		p.advance()
		return &ast.IntLit{Val: t.Val, PosVal: t.Pos}
	case lexer.Ident:
		if p.peek().Kind == lexer.LParen {
			p.advance()
			p.advance() // (
			var args []ast.Expr
			for p.cur().Kind != lexer.RParen && p.cur().Kind != lexer.EOF {
				args = append(args, p.parseExpr())
				if !p.accept(lexer.Comma) {
					break
				}
			}
			p.expect(lexer.RParen)
			return &ast.Call{Fun: t.Text, Args: args, PosVal: t.Pos}
		}
		p.advance()
		return &ast.Name{Ident: t.Text, PosVal: t.Pos}
	case lexer.KwNew:
		p.advance()
		p.expect(lexer.KwInt)
		p.expect(lexer.LBrack)
		size := p.parseExpr()
		p.expect(lexer.RBrack)
		return &ast.NewArray{Size: size, PosVal: t.Pos}
	case lexer.KwLen:
		p.advance()
		p.expect(lexer.LParen)
		arr := p.parseExpr()
		p.expect(lexer.RParen)
		return &ast.LenExpr{Arr: arr, PosVal: t.Pos}
	case lexer.LParen:
		p.advance()
		x := p.parseExpr()
		p.expect(lexer.RParen)
		return x
	}
	p.errorf(p.cur().Pos, "expected expression, found %s", p.cur().Kind)
	p.advance()
	return &ast.IntLit{PosVal: p.cur().Pos}
}
