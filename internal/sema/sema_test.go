package sema

import (
	"strings"
	"testing"

	"debugtuner/internal/ast"
	"debugtuner/internal/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.ParseString("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return info
}

func TestTypeErrors(t *testing.T) {
	cases := map[string]string{
		`func f() { x = 1; }`:                                     "undefined",
		`func f() { var a: int = 1; var a: int = 2; }`:            "redeclaration",
		`var g: int = 1; var g: int = 2;`:                         "duplicate global",
		`func f() {} func f() {}`:                                 "duplicate function",
		`func f() { var a: int[] = new int[4]; a = 3; }`:          "cannot assign",
		`func f() { var x: int = 0; x[0] = 1; }`:                  "requires an array",
		`func f(): int { return; }`:                               "must return a value",
		`func f() { return 3; }`:                                  "returns a value",
		`func f() { break; }`:                                     "break outside loop",
		`func f() { continue; }`:                                  "continue outside loop",
		`func f() { g(1); }`:                                      "undefined function",
		`func g(x: int): int { return x; } func f() { g(); }`:     "takes 1 arguments",
		`func f() { print(new int[3]); }`:                         "print takes an int",
		`func f() { var a: int[] = new int[2]; var x: int = a; }`: "cannot initialize",
		`func f() { var x: int = len(3); }`:                       "len takes an array",
		`var g: int = f();  func f(): int { return 1; }`:          "must be a constant",
	}
	for src, want := range cases {
		_, err := check(t, src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", src, want)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%q: error %q does not contain %q", src, err, want)
		}
	}
}

func TestShadowingAcrossScopes(t *testing.T) {
	info := mustCheck(t, `
func f(x: int): int {
	var y: int = x;
	if (x > 0) {
		var y: int = 2 * x;
		x = y;
	}
	return y;
}`)
	// Two y symbols plus x.
	var ys []*ast.Symbol
	for _, s := range info.Symbols {
		if s.Name == "y" {
			ys = append(ys, s)
		}
	}
	if len(ys) != 2 {
		t.Fatalf("found %d y symbols, want 2", len(ys))
	}
	if ys[0].Scope.Start.Line == ys[1].Scope.Start.Line {
		t.Error("shadowed symbols share a scope start")
	}
}

func TestNegativeGlobalInit(t *testing.T) {
	mustCheck(t, `var g: int = -42; func f() { print(g); }`)
}

func TestDefRanges(t *testing.T) {
	info := mustCheck(t, `
func f(p: int): int {
	var a: int = p;
	var b: int;
	if (p > 0) {
		b = 1;
	}
	return a + b;
}`)
	dr := ComputeDefRanges(info)
	sym := func(name string) int {
		for _, s := range info.Symbols {
			if s.Name == name {
				return s.ID
			}
		}
		t.Fatalf("no symbol %q", name)
		return -1
	}
	// p (a parameter) is expected over the whole function.
	if !dr.InRange(sym("p"), 3) || !dr.InRange(sym("p"), 8) {
		t.Error("parameter should be in range through the function")
	}
	// a is expected from its declaration (line 3) onward.
	if dr.InRange(sym("a"), 2) || !dr.InRange(sym("a"), 3) || !dr.InRange(sym("a"), 8) {
		t.Error("a's range should start at its declaration")
	}
	// b is first assigned at line 6; before that it is not expected.
	if dr.InRange(sym("b"), 4) || !dr.InRange(sym("b"), 6) || !dr.InRange(sym("b"), 8) {
		t.Error("b's range should start at its first assignment")
	}
	// ExpectedAt reflects the same data.
	found := false
	for _, id := range dr.ExpectedAt(8) {
		if id == sym("b") {
			found = true
		}
	}
	if !found {
		t.Error("ExpectedAt(8) should include b")
	}
}

func TestStatementLines(t *testing.T) {
	info := mustCheck(t, `
func f() {
	var a: int = 1;
	if (a > 0) {
		print(a);
	}
}`)
	lines := StatementLines(info)
	for _, l := range []int{3, 4, 5} {
		if !lines[l] {
			t.Errorf("line %d missing from statement lines", l)
		}
	}
	if lines[2] || lines[6] {
		t.Error("non-statement lines included")
	}
}

func TestHarnessSignature(t *testing.T) {
	info := mustCheck(t, `
func fuzz_a(input: int[], n: int) { print(n); }
func fuzz_bad1(n: int, input: int[]) { print(n); }
func fuzz_bad2(input: int[], n: int): int { return n; }
`)
	if len(info.Harnesses) != 1 || info.Harnesses[0] != "fuzz_a" {
		t.Fatalf("harnesses = %v", info.Harnesses)
	}
}
