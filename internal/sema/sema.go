// Package sema resolves names, checks types, and computes the source-level
// definition-range analysis that the hybrid debug-information metric
// relies on (DebugTuner §II–§III.A stage 3).
//
// The definition-range analysis answers, for each source line, "which
// variables are in scope here and have been assigned by this point?".
// The hybrid method intersects this with the dynamic debugger trace of
// the unoptimized binary, clipping DWARF's whole-scope variable locations
// back to the range the source actually defines — removing the baseline
// inflation that makes purely dynamic metrics underestimate quality.
package sema

import (
	"fmt"
	"sort"

	"debugtuner/internal/ast"
	"debugtuner/internal/source"
)

// Info is the result of semantic analysis.
type Info struct {
	Program *ast.Program
	// Symbols lists every declared variable, indexed by Symbol.ID.
	Symbols []*ast.Symbol
	// Harnesses lists functions with the fuzz-harness signature
	// func(input: int[], n: int).
	Harnesses []string
}

// SymbolNames maps symbol IDs to source names, for tooling output.
func (info *Info) SymbolNames() map[int]string {
	out := make(map[int]string, len(info.Symbols))
	for _, s := range info.Symbols {
		out[s.ID] = s.Name
	}
	return out
}

// checker carries state during analysis.
type checker struct {
	prog    *ast.Program
	info    *Info
	errors  source.ErrorList
	globals map[string]*ast.Symbol
	funcs   map[string]*ast.FuncDecl

	// per-function state
	curFunc *ast.FuncDecl
	scopes  []map[string]*ast.Symbol
	loops   int
}

// Check runs semantic analysis over the program.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		prog:    prog,
		info:    &Info{Program: prog},
		globals: make(map[string]*ast.Symbol),
		funcs:   make(map[string]*ast.FuncDecl),
	}
	c.collect()
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	if err := c.errors.Err(); err != nil {
		return nil, err
	}
	return c.info, nil
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.errors = append(c.errors, &source.Error{
		File: c.prog.File.Name,
		Pos:  pos,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (c *checker) newSymbol(name string, typ ast.Type, kind ast.SymbolKind, decl source.Pos, scope source.Range, fn string) *ast.Symbol {
	sym := &ast.Symbol{
		Name: name, Type: typ, Kind: kind, Decl: decl, Scope: scope,
		Func: fn, ID: len(c.info.Symbols),
	}
	c.info.Symbols = append(c.info.Symbols, sym)
	return sym
}

// collect registers globals and function signatures.
func (c *checker) collect() {
	endOfFile := source.Pos{Line: c.prog.File.NumLines() + 1, Col: 1}
	for _, g := range c.prog.Globals {
		d := g.Decl
		if _, dup := c.globals[d.Name]; dup {
			c.errorf(d.PosVal, "duplicate global %q", d.Name)
			continue
		}
		sym := c.newSymbol(d.Name, d.Type, ast.SymGlobal, d.PosVal,
			source.Range{Start: d.PosVal, End: endOfFile}, "")
		d.Sym = sym
		c.globals[d.Name] = sym
		if d.Init != nil && !isConstInit(d.Init) {
			c.errorf(d.PosVal, "global initializer must be a constant or new int[n]")
		}
	}
	for _, f := range c.prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			c.errorf(f.PosVal, "duplicate function %q", f.Name)
			continue
		}
		c.funcs[f.Name] = f
		if isHarnessSig(f) {
			c.info.Harnesses = append(c.info.Harnesses, f.Name)
		}
	}
	sort.Strings(c.info.Harnesses)
}

// isConstInit accepts literal, negated-literal, and new int[literal]
// global initializers.
func isConstInit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.Unary:
		if e.Op != "-" {
			return false
		}
		_, ok := e.X.(*ast.IntLit)
		return ok
	case *ast.NewArray:
		_, ok := e.Size.(*ast.IntLit)
		return ok
	}
	return false
}

// isHarnessSig reports whether f has the fuzz-harness signature
// func(input: int[], n: int).
func isHarnessSig(f *ast.FuncDecl) bool {
	return len(f.Params) == 2 &&
		f.Params[0].Type == ast.TypeArray &&
		f.Params[1].Type == ast.TypeInt &&
		f.Result == ast.TypeVoid
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*ast.Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, sym *ast.Symbol, pos source.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "redeclaration of %q in the same scope", name)
	}
	top[name] = sym
}

func (c *checker) lookup(name string) *ast.Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if sym, ok := c.scopes[i][name]; ok {
			return sym
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(f *ast.FuncDecl) {
	c.curFunc = f
	c.loops = 0
	c.pushScope()
	fnRange := source.Range{Start: f.PosVal, End: after(f.EndPos)}
	for _, p := range f.Params {
		sym := c.newSymbol(p.Name, p.Type, ast.SymParam, p.PosVal, fnRange, f.Name)
		p.Sym = sym
		c.declare(p.Name, sym, p.PosVal)
	}
	c.checkBlock(f.Body, false)
	c.popScope()
	c.curFunc = nil
}

// after returns the position just past p, so ranges include line p.Line.
func after(p source.Pos) source.Pos { return source.Pos{Line: p.Line, Col: p.Col + 1} }

func (c *checker) checkBlock(b *ast.Block, newScope bool) {
	if newScope {
		c.pushScope()
		defer c.popScope()
	}
	for _, s := range b.Stmts {
		c.checkStmt(s, b)
	}
}

func (c *checker) checkStmt(s ast.Stmt, encl *ast.Block) {
	switch s := s.(type) {
	case *ast.VarDecl:
		var init ast.Type
		if s.Init != nil {
			init = c.checkExpr(s.Init)
			if init != s.Type && init != ast.TypeInvalid {
				c.errorf(s.PosVal, "cannot initialize %s %q with %s", s.Type, s.Name, init)
			}
		} else if s.Type == ast.TypeArray {
			c.errorf(s.PosVal, "local array %q needs an initializer", s.Name)
		}
		scope := source.Range{Start: s.PosVal, End: after(encl.EndPos)}
		sym := c.newSymbol(s.Name, s.Type, ast.SymLocal, s.PosVal, scope, c.curFunc.Name)
		s.Sym = sym
		c.declare(s.Name, sym, s.PosVal)
	case *ast.Assign:
		val := c.checkExpr(s.Value)
		if s.Target != nil {
			sym := c.lookup(s.Target.Ident)
			if sym == nil {
				c.errorf(s.Target.PosVal, "undefined: %s", s.Target.Ident)
				return
			}
			s.Target.Sym = sym
			if sym.Type != val && val != ast.TypeInvalid {
				c.errorf(s.PosVal, "cannot assign %s to %s %q", val, sym.Type, sym.Name)
			}
			return
		}
		arr := c.checkExpr(s.Arr)
		if arr != ast.TypeArray && arr != ast.TypeInvalid {
			c.errorf(s.PosVal, "indexed assignment requires an array")
		}
		idx := c.checkExpr(s.Idx)
		if idx != ast.TypeInt && idx != ast.TypeInvalid {
			c.errorf(s.PosVal, "array index must be int")
		}
		if val != ast.TypeInt && val != ast.TypeInvalid {
			c.errorf(s.PosVal, "array element must be int")
		}
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.PrintStmt:
		if t := c.checkExpr(s.X); t != ast.TypeInt && t != ast.TypeInvalid {
			c.errorf(s.PosVal, "print takes an int")
		}
	case *ast.If:
		c.checkCond(s.Cond, s.PosVal)
		c.checkBlock(s.Then, true)
		if s.Else != nil {
			c.checkStmt(s.Else, encl)
		}
	case *ast.While:
		c.checkCond(s.Cond, s.PosVal)
		c.loops++
		c.checkBlock(s.Body, true)
		c.loops--
	case *ast.For:
		c.pushScope()
		if s.Init != nil {
			// The loop variable's scope is the loop, not the enclosing block.
			c.checkStmt(s.Init, s.Body)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond, s.PosVal)
		}
		c.loops++
		c.checkBlock(s.Body, true)
		c.loops--
		if s.Post != nil {
			c.checkStmt(s.Post, s.Body)
		}
		c.popScope()
	case *ast.Break:
		if c.loops == 0 {
			c.errorf(s.PosVal, "break outside loop")
		}
	case *ast.Continue:
		if c.loops == 0 {
			c.errorf(s.PosVal, "continue outside loop")
		}
	case *ast.Return:
		if c.curFunc.Result == ast.TypeVoid {
			if s.Value != nil {
				c.errorf(s.PosVal, "void function %q returns a value", c.curFunc.Name)
			}
			return
		}
		if s.Value == nil {
			c.errorf(s.PosVal, "function %q must return a value", c.curFunc.Name)
			return
		}
		if t := c.checkExpr(s.Value); t != ast.TypeInt && t != ast.TypeInvalid {
			c.errorf(s.PosVal, "cannot return %s from int function", t)
		}
	case *ast.Block:
		c.checkBlock(s, true)
	}
}

func (c *checker) checkCond(e ast.Expr, pos source.Pos) {
	if t := c.checkExpr(e); t != ast.TypeInt && t != ast.TypeInvalid {
		c.errorf(pos, "condition must be int")
	}
}

func (c *checker) checkExpr(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.TypeInt
	case *ast.Name:
		sym := c.lookup(e.Ident)
		if sym == nil {
			c.errorf(e.PosVal, "undefined: %s", e.Ident)
			return ast.TypeInvalid
		}
		e.Sym = sym
		return sym.Type
	case *ast.Unary:
		if t := c.checkExpr(e.X); t != ast.TypeInt && t != ast.TypeInvalid {
			c.errorf(e.PosVal, "operand of %q must be int", e.Op)
		}
		return ast.TypeInt
	case *ast.Binary:
		tx := c.checkExpr(e.X)
		ty := c.checkExpr(e.Y)
		if (tx != ast.TypeInt && tx != ast.TypeInvalid) ||
			(ty != ast.TypeInt && ty != ast.TypeInvalid) {
			c.errorf(e.PosVal, "operands of %q must be int", e.Op)
		}
		return ast.TypeInt
	case *ast.Index:
		if t := c.checkExpr(e.Arr); t != ast.TypeArray && t != ast.TypeInvalid {
			c.errorf(e.PosVal, "cannot index %s", t)
		}
		if t := c.checkExpr(e.Idx); t != ast.TypeInt && t != ast.TypeInvalid {
			c.errorf(e.PosVal, "array index must be int")
		}
		return ast.TypeInt
	case *ast.Call:
		callee, ok := c.funcs[e.Fun]
		if !ok {
			c.errorf(e.PosVal, "undefined function %q", e.Fun)
			return ast.TypeInvalid
		}
		e.Target = callee
		if len(e.Args) != len(callee.Params) {
			c.errorf(e.PosVal, "%q takes %d arguments, got %d",
				e.Fun, len(callee.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i < len(callee.Params) && at != callee.Params[i].Type && at != ast.TypeInvalid {
				c.errorf(e.PosVal, "argument %d of %q: want %s, got %s",
					i+1, e.Fun, callee.Params[i].Type, at)
			}
		}
		return callee.Result
	case *ast.NewArray:
		if t := c.checkExpr(e.Size); t != ast.TypeInt && t != ast.TypeInvalid {
			c.errorf(e.PosVal, "array size must be int")
		}
		return ast.TypeArray
	case *ast.LenExpr:
		if t := c.checkExpr(e.Arr); t != ast.TypeArray && t != ast.TypeInvalid {
			c.errorf(e.PosVal, "len takes an array")
		}
		return ast.TypeInt
	}
	return ast.TypeInvalid
}
