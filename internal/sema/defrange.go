package sema

import (
	"sort"

	"debugtuner/internal/ast"
	"debugtuner/internal/source"
)

// DefRanges records, for every variable, the source range over which the
// variable is both in scope and has been assigned. This is the static
// source analysis of DebugTuner stage 3 (§III.A): the hybrid metric clips
// a debugger trace with it so that a variable reported by the debugger
// before its source-level definition (a DWARF whole-scope location, the
// defect noted by Stinnett & Kell) does not inflate the baseline.
type DefRanges struct {
	info *Info
	// avail[id] is the clipped availability range for symbol id.
	avail []source.Range
	// byLine caches line -> symbol IDs expected available there.
	byLine map[int][]int
}

// ComputeDefRanges runs the definition-range analysis.
//
// The analysis is intentionally the same simple AST walk the paper's
// ~400-line Python tool performs: a variable becomes "expected available"
// at its first textual assignment inside its scope (its declaration when
// initialized, function entry for parameters, program start for globals)
// and stays expected until its scope ends.
func ComputeDefRanges(info *Info) *DefRanges {
	d := &DefRanges{
		info:   info,
		avail:  make([]source.Range, len(info.Symbols)),
		byLine: make(map[int][]int),
	}
	firstAssign := make([]source.Pos, len(info.Symbols))
	for _, sym := range info.Symbols {
		switch sym.Kind {
		case ast.SymGlobal:
			firstAssign[sym.ID] = source.Pos{Line: 1, Col: 1}
		case ast.SymParam:
			firstAssign[sym.ID] = sym.Scope.Start
		default:
			firstAssign[sym.ID] = source.Pos{} // not yet seen
		}
	}
	for _, f := range info.Program.Funcs {
		walkStmts(f.Body, func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.VarDecl:
				if s.Sym != nil && s.Init != nil {
					noteAssign(firstAssign, s.Sym, s.PosVal)
				}
			case *ast.Assign:
				if s.Target != nil && s.Target.Sym != nil {
					noteAssign(firstAssign, s.Target.Sym, s.PosVal)
				}
			}
		})
	}
	for _, sym := range info.Symbols {
		start := firstAssign[sym.ID]
		if !start.IsValid() {
			// Never assigned: expected nowhere; leave a zero (empty) range.
			continue
		}
		d.avail[sym.ID] = source.Range{Start: start, End: sym.Scope.End}
	}
	for _, sym := range info.Symbols {
		r := d.avail[sym.ID]
		if !r.Start.IsValid() {
			continue
		}
		for line := r.Start.Line; line < r.End.Line || (line == r.End.Line && r.End.Col > 1); line++ {
			d.byLine[line] = append(d.byLine[line], sym.ID)
			if line >= r.End.Line {
				break
			}
		}
	}
	for _, ids := range d.byLine {
		sort.Ints(ids)
	}
	return d
}

func noteAssign(first []source.Pos, sym *ast.Symbol, pos source.Pos) {
	if !first[sym.ID].IsValid() || pos.Before(first[sym.ID]) {
		first[sym.ID] = pos
	}
}

// InRange reports whether the symbol is expected available at the line.
func (d *DefRanges) InRange(symID, line int) bool {
	if symID < 0 || symID >= len(d.avail) {
		return false
	}
	r := d.avail[symID]
	if !r.Start.IsValid() {
		return false
	}
	return line >= r.Start.Line && (line < r.End.Line || (line == r.End.Line && r.End.Col > 1))
}

// ExpectedAt returns the IDs of symbols expected available at the line,
// sorted ascending.
func (d *DefRanges) ExpectedAt(line int) []int { return d.byLine[line] }

// Range returns the availability range for a symbol; the zero Range means
// the symbol is never expected (declared but never assigned).
func (d *DefRanges) Range(symID int) source.Range { return d.avail[symID] }

// StatementLines returns the set of source lines carrying a statement —
// the static method's notion of "lines that should be steppable",
// including dead and unreachable code (which is exactly why the static
// baseline is larger than the dynamic one, §II).
func StatementLines(info *Info) map[int]bool {
	lines := map[int]bool{}
	for _, f := range info.Program.Funcs {
		walkStmts(f.Body, func(s ast.Stmt) {
			if p := s.Pos(); p.IsValid() {
				lines[p.Line] = true
			}
		})
	}
	return lines
}

// walkStmts visits every statement in the block, recursively.
func walkStmts(b *ast.Block, visit func(ast.Stmt)) {
	for _, s := range b.Stmts {
		walkStmt(s, visit)
	}
}

func walkStmt(s ast.Stmt, visit func(ast.Stmt)) {
	visit(s)
	switch s := s.(type) {
	case *ast.If:
		walkStmts(s.Then, visit)
		if s.Else != nil {
			walkStmt(s.Else, visit)
		}
	case *ast.While:
		walkStmts(s.Body, visit)
	case *ast.For:
		if s.Init != nil {
			walkStmt(s.Init, visit)
		}
		walkStmts(s.Body, visit)
		if s.Post != nil {
			walkStmt(s.Post, visit)
		}
	case *ast.Block:
		walkStmts(s, visit)
	}
}
