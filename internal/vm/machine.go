package vm

import (
	"errors"
	"fmt"

	"debugtuner/internal/telemetry"
)

// Costs of the machine model, in cycles.
const (
	costDefault    = 1
	costMul        = 3
	costDivRem     = 10
	costLoad       = 3
	costStore      = 2
	costLoadUse    = 2 // stall when a load's result is consumed immediately
	costJmp        = 1
	costBrTaken    = 3
	costBrFall     = 1
	costCallBase   = 5
	costCallArg    = 1
	costRet        = 2
	costNewArrMin  = 10
	costPrint      = 1
	costVLoad      = 3
	costVStore     = 2
	costICacheMiss = 8

	icacheLineShift = 4 // 16 instructions per line
	icacheSets      = 256
)

// ErrBudget is the base sentinel for execution-budget exhaustion:
// errors.Is(err, ErrBudget) matches both step- and heap-budget errors.
// Budget exhaustion is deterministic for a given binary and input, so
// retry layers must classify it as permanent, never transient.
var ErrBudget = errors.New("vm: execution budget exceeded")

// ErrStepBudget is returned when execution exceeds the step budget.
var ErrStepBudget = fmt.Errorf("%w: step limit", ErrBudget)

// ErrHeapBudget is returned when an allocation would push the heap past
// an explicitly configured Machine.HeapBudget. The hard MaxHeapWords cap
// still clamps silently (that behavior is differential-test load-bearing);
// the budget error only exists for callers that opt in.
var ErrHeapBudget = fmt.Errorf("%w: heap limit", ErrBudget)

// Frame is one activation record.
type Frame struct {
	FnIdx   int
	Regs    [NumRegs]int64
	Lanes   [NumRegs]int64 // second lanes of two-lane vector registers
	Slots   []int64
	Params  []int64
	Owner   [NumRegs]int32 // symbol ID + 1 whose value the register holds
	SlotOwn []int32
	// PrologueDone is set when the frame's OpProlog has executed;
	// before that, slot-based variable locations cannot materialize.
	PrologueDone bool

	retAddr int
	retReg  uint8
	// retTags are owner tags from the call instruction, applied in the
	// caller once the return value lands (a binding "after the call"
	// only holds after the call completes).
	retTags []OwnerTag
}

// Engine selects the execution core. The zero value (EngineAuto) picks
// the fastest core that supports the machine's active instrumentation;
// the other values force a specific core for differential testing.
type Engine uint8

const (
	// EngineAuto picks EngineFused when no per-step instrumentation
	// (breakpoints, coverage, sampling, pair counting) is active, and
	// EnginePlain otherwise.
	EngineAuto Engine = iota
	// EngineReference is the original switch-dispatch interpreter, kept
	// as the executable specification the threaded cores are
	// differentially tested against.
	EngineReference
	// EnginePlain is the direct-threaded core on the unfused instruction
	// stream with full per-step instrumentation (breakpoints, coverage,
	// opcode-pair counting).
	EnginePlain
	// EngineFused is the direct-threaded core on the superinstruction
	// stream. Cycle/step accounting is identical to the other engines;
	// per-step instrumentation (breakpoints, address coverage, pair
	// counting) is not consulted.
	EngineFused
)

// Machine executes a Binary.
type Machine struct {
	Bin       *Binary
	Globals   []int64
	heap      [][]int64
	heapWords int64
	out       []int64

	frames []*Frame
	pc     int

	// Engine forces an execution core; leave zero for automatic
	// selection (see Engine).
	Engine Engine

	// Direct-threaded dispatch state (exec.go).
	fr           *Frame // cached top of frames
	depth0       int    // frame depth the active Call returns past
	stop         bool
	trap         error
	retVal       int64
	lastLoadMask uint16

	// Frame pool and heap arena: Call/Ret recycle frames instead of
	// allocating, and small array allocations carve from chunked arenas.
	framePool []*Frame
	arena     []int64

	// Cost accounting.
	Cycles     int64
	Steps      int64
	StepBudget int64
	// HeapBudget, when > 0, turns allocations that would push the total
	// heap past it into ErrHeapBudget instead of the silent MaxHeapWords
	// clamp. 0 (the default) preserves the clamping semantics.
	HeapBudget int64
	// Cost breakdown counters for ablation analysis.
	ICacheMisses int64
	StallCycles  int64
	TakenBr      int64
	FallBr       int64
	JmpsRun      int64
	SlotOpsRun   int64
	icacheTags   [icacheSets]int64
	lastLoadReg  int // register written by the immediately preceding load, or -1

	// Breakpoints: a dense per-address flag set maintained through
	// SetBreak/ClearBreak. The OnBreak handler runs before the
	// instruction at the address executes. Breakpoints present when Call
	// starts select the instrumented core; OnBreak may clear breakpoints
	// mid-run but additions only take effect at the next Call.
	breaks  []uint8
	nbreaks int
	OnBreak func(m *Machine, addr int)

	// Coverage, enabled by EnableCoverage: executed addresses and
	// control-flow edge hit counts.
	CovAddrs map[int]bool
	CovEdges map[uint64]int64

	// PairCounts, enabled by EnablePairCounts, histograms dynamically
	// executed opcode pairs (prev<<8|cur) — the telemetry that selects
	// the superinstruction set (see decode.go).
	PairCounts map[uint16]int64
	prevOp     Op

	// Sampling, enabled when SampleEvery > 0: the PC is recorded every
	// SampleEvery cycles (deterministically, on the instruction that
	// crosses the boundary).
	SampleEvery int64
	Samples     []int
	nextSample  int64

	argBuf []int64
}

// New creates a machine for the binary with initialized globals.
func New(b *Binary) *Machine {
	m := &Machine{Bin: b, StepBudget: 1 << 40, lastLoadReg: -1}
	m.Globals = make([]int64, len(b.Globals))
	for i := range b.Globals {
		g := &b.Globals[i]
		if g.IsArray {
			m.Globals[i] = m.alloc(g.Init)
		} else {
			m.Globals[i] = g.Init
		}
	}
	for i := range m.icacheTags {
		m.icacheTags[i] = -1
	}
	return m
}

// EnableCoverage turns on address and edge recording.
func (m *Machine) EnableCoverage() {
	m.CovAddrs = make(map[int]bool)
	m.CovEdges = make(map[uint64]int64)
}

// EnablePairCounts turns on the dynamic opcode-pair histogram used to
// select superinstruction candidates.
func (m *Machine) EnablePairCounts() {
	m.PairCounts = make(map[uint16]int64)
}

// SetBreak plants a breakpoint at the address. Breakpoints set before
// Call are honored on every step; OnBreak fires before the instruction
// at the address executes.
func (m *Machine) SetBreak(addr int) {
	if addr < 0 || addr >= len(m.Bin.Code) {
		return
	}
	if m.breaks == nil {
		m.breaks = make([]uint8, len(m.Bin.Code))
	}
	if m.breaks[addr] == 0 {
		m.breaks[addr] = 1
		m.nbreaks++
	}
}

// ClearBreak removes the breakpoint at the address.
func (m *Machine) ClearBreak(addr int) {
	if m.breaks == nil || addr < 0 || addr >= len(m.breaks) || m.breaks[addr] == 0 {
		return
	}
	m.breaks[addr] = 0
	m.nbreaks--
}

// ClearAllBreaks removes every breakpoint.
func (m *Machine) ClearAllBreaks() {
	for i := range m.breaks {
		m.breaks[i] = 0
	}
	m.nbreaks = 0
}

// HasBreak reports whether a breakpoint is set at the address.
func (m *Machine) HasBreak(addr int) bool {
	return m.breaks != nil && addr >= 0 && addr < len(m.breaks) && m.breaks[addr] != 0
}

// BreakCount returns the number of live breakpoints.
func (m *Machine) BreakCount() int { return m.nbreaks }

// Output returns the print stream.
func (m *Machine) Output() []int64 { return m.out }

// Frame returns the active frame (for the debugger).
func (m *Machine) Frame() *Frame {
	if len(m.frames) == 0 {
		return nil
	}
	return m.frames[len(m.frames)-1]
}

// PC returns the current program counter.
func (m *Machine) PC() int { return m.pc }

// Heap returns the array object for a handle, or nil.
func (m *Machine) Heap(h int64) []int64 {
	if h < 0 || h >= int64(len(m.heap)) {
		return nil
	}
	return m.heap[h]
}

// NewArray allocates an array for harness inputs.
func (m *Machine) NewArray(data []int64) int64 {
	h := m.alloc(int64(len(data)))
	copy(m.heap[h], data)
	return h
}

// MaxHeapWords caps the machine's total array heap. Allocations past the
// cap are clamped to the remaining capacity (possibly zero length), and
// MiniC's out-of-bounds semantics — loads 0, stores ignored — keep such
// runs total and deterministic. The IR interpreter applies the identical
// rule so the two engines stay behaviorally equivalent on alloc-heavy
// programs.
const MaxHeapWords int64 = 1 << 24

// arenaChunk is the allocation quantum of the heap arena. Small arrays
// carve zeroed regions out of one chunk instead of hitting the Go
// allocator per OpNewArr; regions are handed out once and never reused,
// so the zero-initialization guarantee is preserved.
const arenaChunk = 1 << 15

func (m *Machine) alloc(n int64) int64 {
	if n < 0 {
		n = 0
	}
	if rem := MaxHeapWords - m.heapWords; n > rem {
		n = rem
	}
	m.heapWords += n
	var a []int64
	switch {
	case n <= int64(len(m.arena)):
		a = m.arena[:n:n]
		m.arena = m.arena[n:]
	case n < arenaChunk/4:
		m.arena = make([]int64, arenaChunk)
		a = m.arena[:n:n]
		m.arena = m.arena[n:]
	default:
		a = make([]int64, n)
	}
	m.heap = append(m.heap, a)
	return int64(len(m.heap) - 1)
}

// newFrame returns a zeroed frame for the function, recycling one from
// the pool when possible. Slots and SlotOwn keep their backing arrays
// across recycles; Params is reset to zero length for the caller to
// fill.
func (m *Machine) newFrame(fi, nslots, retAddr int, retReg uint8) *Frame {
	var fr *Frame
	if n := len(m.framePool); n > 0 {
		fr = m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
		*fr = Frame{Slots: fr.Slots, SlotOwn: fr.SlotOwn, Params: fr.Params[:0]}
	} else {
		fr = &Frame{}
	}
	if cap(fr.Slots) < nslots {
		fr.Slots = make([]int64, nslots)
		fr.SlotOwn = make([]int32, nslots)
	} else {
		fr.Slots = fr.Slots[:nslots]
		fr.SlotOwn = fr.SlotOwn[:nslots]
		for i := range fr.Slots {
			fr.Slots[i] = 0
			fr.SlotOwn[i] = 0
		}
	}
	fr.FnIdx = fi
	fr.retAddr = retAddr
	fr.retReg = retReg
	return fr
}

// freeFrame returns a popped frame to the pool.
func (m *Machine) freeFrame(fr *Frame) {
	fr.retTags = nil
	m.framePool = append(m.framePool, fr)
}

// Call runs the named function to completion and returns its result.
func (m *Machine) Call(name string, args ...int64) (int64, error) {
	fi := m.Bin.FuncIndex(name)
	if fi < 0 {
		return 0, fmt.Errorf("vm: no function %q", name)
	}
	// The threaded cores keep dispatch state on the Machine (referenceRun
	// keeps it in locals); save it so a nested Call from an OnBreak
	// callback cannot corrupt the suspended outer loop.
	prevFr, prevDepth0 := m.fr, m.depth0
	prevStop, prevTrap, prevRet := m.stop, m.trap, m.retVal
	f := &m.Bin.Funcs[fi]
	fr := m.newFrame(fi, f.NumSlots, -1, 0)
	fr.Params = append(fr.Params, args...)
	m.frames = append(m.frames, fr)
	m.fr = fr
	m.depth0 = len(m.frames) - 1
	m.pc = f.Start
	if m.SampleEvery > 0 && m.nextSample == 0 {
		m.nextSample = m.SampleEvery
	}
	var r int64
	var err error
	if snk := telemetry.Active(); snk != nil {
		// Flush the interpreter's counters as one delta per Call so the
		// hot loop stays untouched.
		steps0, cycles0 := m.Steps, m.Cycles
		r, err = m.dispatch()
		snk.Add("vm.steps", m.Steps-steps0)
		snk.Add("vm.cycles", m.Cycles-cycles0)
	} else {
		r, err = m.dispatch()
	}
	m.fr, m.depth0 = prevFr, prevDepth0
	m.stop, m.trap, m.retVal = prevStop, prevTrap, prevRet
	return r, err
}

// instrumented reports whether per-step instrumentation demands the
// plain (unfused) core.
func (m *Machine) instrumented() bool {
	return m.nbreaks > 0 || m.OnBreak != nil || m.CovAddrs != nil ||
		m.PairCounts != nil || m.SampleEvery > 0
}

// dispatch selects the execution core for one Call.
func (m *Machine) dispatch() (int64, error) {
	switch m.Engine {
	case EngineReference:
		return m.referenceRun()
	case EnginePlain:
		return m.execInstr(m.Bin.plainProg())
	case EngineFused:
		return m.execFast(m.Bin.fusedProg())
	default:
		if m.instrumented() {
			return m.execInstr(m.Bin.plainProg())
		}
		return m.execFast(m.Bin.fusedProg())
	}
}

// EvalBinOp exposes the machine's binary-operation semantics (total:
// div/rem by zero yield 0, MinInt64/-1 wraps, shift counts masked to 6
// bits) so the middle-end folder can be cross-checked against the VM in
// differential tests.
func EvalBinOp(sub uint8, x, y int64) int64 { return evalBin(sub, x, y) }

func evalBin(sub uint8, x, y int64) int64 {
	switch sub {
	case BinAdd:
		return x + y
	case BinSub:
		return x - y
	case BinMul:
		return x * y
	case BinDiv:
		if y == 0 {
			return 0
		}
		if x == -1<<63 && y == -1 {
			return x
		}
		return x / y
	case BinRem:
		if y == 0 {
			return 0
		}
		if x == -1<<63 && y == -1 {
			return 0
		}
		return x % y
	case BinAnd:
		return x & y
	case BinOr:
		return x | y
	case BinXor:
		return x ^ y
	case BinShl:
		return x << uint(y&63)
	case BinShr:
		return x >> uint(y&63)
	case BinEq:
		return b2i(x == y)
	case BinNe:
		return b2i(x != y)
	case BinLt:
		return b2i(x < y)
	case BinLe:
		return b2i(x <= y)
	case BinGt:
		return b2i(x > y)
	case BinGe:
		return b2i(x >= y)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// charge adds cycles and advances the sampling clock.
func (m *Machine) charge(c int64) {
	m.Cycles += c
	if m.SampleEvery > 0 && m.Cycles >= m.nextSample {
		m.Samples = append(m.Samples, m.pc)
		for m.nextSample <= m.Cycles {
			m.nextSample += m.SampleEvery
		}
	}
}

// transfer records a control-flow edge and the icache/branch costs.
func (m *Machine) edge(from, to int) {
	if m.CovEdges != nil {
		m.CovEdges[uint64(from)<<32|uint64(uint32(to))]++
	}
}

func (m *Machine) icache(pc int) {
	line := int64(pc >> icacheLineShift)
	set := line & (icacheSets - 1)
	if m.icacheTags[set] != line {
		m.icacheTags[set] = line
		m.Cycles += costICacheMiss
		m.ICacheMisses++
	}
}

// referenceRun is the original switch-dispatch interpreter, retained as
// the executable specification: the direct-threaded cores in exec.go are
// differentially tested against it (identical output, cycles, steps, and
// counters on every program). Changes to machine semantics MUST be made
// here first and mirrored into the handlers.
func (m *Machine) referenceRun() (int64, error) {
	depth0 := m.depth0
	var retVal int64
	for {
		if len(m.frames) == depth0 {
			return retVal, nil
		}
		m.Steps++
		if m.Steps > m.StepBudget {
			return 0, ErrStepBudget
		}
		pc := m.pc
		if m.breaks != nil && m.breaks[pc] != 0 && m.OnBreak != nil {
			m.OnBreak(m, pc)
		}
		if m.CovAddrs != nil {
			m.CovAddrs[pc] = true
		}
		m.icache(pc)
		in := &m.Bin.Code[pc]
		fr := m.frames[len(m.frames)-1]

		// Owner pre-tags apply before the write below.
		for _, t := range in.Own {
			if t.Pre {
				m.applyTag(fr, t)
			}
		}

		// Load-use stall: reading the register a load just produced.
		if m.lastLoadReg >= 0 {
			r := uint8(m.lastLoadReg)
			readsR := false
			switch in.Op {
			case OpMov, OpNeg, OpNot, OpStoreSlot, OpGStore, OpNewArr,
				OpLen, OpArg, OpPrint, OpBr:
				readsR = in.A == r
			case OpBin, OpSelect, OpALoad, OpVLoad2, OpVBin:
				readsR = in.A == r || in.B == r
			case OpBinImm:
				readsR = in.A == r
			case OpAStore, OpVStore2:
				readsR = in.A == r || in.B == r || in.C == r
			case OpRet:
				readsR = in.Sub != 0 && in.A == r
			}
			if readsR {
				m.Cycles += costLoadUse
				m.StallCycles += costLoadUse
			}
		}
		loadReg := -1

		next := pc + 1
		switch in.Op {
		case OpNop:
			m.charge(costDefault)
		case OpProlog:
			fr.PrologueDone = true
			m.charge(2 + int64(len(fr.Slots))/8)
		case OpConst:
			m.setReg(fr, in.D, in.Imm, 0)
			m.charge(costDefault)
		case OpMov:
			m.setReg(fr, in.D, fr.Regs[in.A], fr.Lanes[in.A])
			m.charge(costDefault)
		case OpBin:
			m.setReg(fr, in.D, evalBin(in.Sub, fr.Regs[in.A], fr.Regs[in.B]), 0)
			m.charge(binCost(in.Sub))
		case OpBinImm:
			m.setReg(fr, in.D, evalBin(in.Sub, fr.Regs[in.A], in.Imm), 0)
			m.charge(binCost(in.Sub))
		case OpNeg:
			m.setReg(fr, in.D, -fr.Regs[in.A], 0)
			m.charge(costDefault)
		case OpNot:
			m.setReg(fr, in.D, b2i(fr.Regs[in.A] == 0), 0)
			m.charge(costDefault)
		case OpSelect:
			v := fr.Regs[in.C]
			if fr.Regs[in.A] != 0 {
				v = fr.Regs[in.B]
			}
			m.setReg(fr, in.D, v, 0)
			m.charge(costDefault)
		case OpLoadSlot:
			m.setReg(fr, in.D, fr.Slots[in.Imm], 0)
			m.charge(costLoad)
			m.SlotOpsRun++
			loadReg = int(in.D)
		case OpStoreSlot:
			fr.Slots[in.Imm] = fr.Regs[in.A]
			fr.SlotOwn[in.Imm] = 0
			m.charge(costStore)
			m.SlotOpsRun++
		case OpLoadParam:
			var v int64
			if int(in.Imm) < len(fr.Params) {
				v = fr.Params[in.Imm]
			}
			m.setReg(fr, in.D, v, 0)
			m.charge(costDefault)
		case OpGLoad:
			m.setReg(fr, in.D, m.Globals[in.Imm], 0)
			m.charge(costLoad)
			loadReg = int(in.D)
		case OpGStore:
			m.Globals[in.Imm] = fr.Regs[in.A]
			m.charge(costStore)
		case OpNewArr:
			n := fr.Regs[in.A]
			if n < 0 {
				n = 0
			}
			if m.HeapBudget > 0 && m.heapWords+n > m.HeapBudget {
				return 0, ErrHeapBudget
			}
			m.setReg(fr, in.D, m.alloc(fr.Regs[in.A]), 0)
			m.charge(costNewArrMin + n/8)
		case OpALoad:
			m.setReg(fr, in.D, m.aload(fr.Regs[in.A], fr.Regs[in.B]), 0)
			m.charge(costLoad)
			loadReg = int(in.D)
		case OpAStore:
			m.astore(fr.Regs[in.A], fr.Regs[in.B], fr.Regs[in.C])
			m.charge(costStore)
		case OpLen:
			m.setReg(fr, in.D, int64(len(m.Heap(fr.Regs[in.A]))), 0)
			m.charge(costDefault)
		case OpVLoad2:
			h, idx := fr.Regs[in.A], fr.Regs[in.B]
			m.setReg(fr, in.D, m.aload(h, idx), m.aload(h, idx+1))
			m.charge(costVLoad)
			loadReg = int(in.D)
		case OpVBin:
			m.setReg(fr, in.D,
				evalBin(in.Sub, fr.Regs[in.A], fr.Regs[in.B]),
				evalBin(in.Sub, fr.Lanes[in.A], fr.Lanes[in.B]))
			m.charge(binCost(in.Sub))
		case OpVStore2:
			h, idx := fr.Regs[in.A], fr.Regs[in.B]
			m.astore(h, idx, fr.Regs[in.C])
			m.astore(h, idx+1, fr.Lanes[in.C])
			m.charge(costVStore)
		case OpArg:
			m.argBuf = append(m.argBuf, fr.Regs[in.A])
			m.charge(costDefault)
		case OpCall:
			callee := &m.Bin.Funcs[in.Imm]
			nf := &Frame{
				FnIdx:   int(in.Imm),
				Slots:   make([]int64, callee.NumSlots),
				SlotOwn: make([]int32, callee.NumSlots),
				Params:  append([]int64(nil), m.argBuf...),
				retAddr: next,
				retReg:  in.D,
			}
			m.argBuf = m.argBuf[:0]
			nf.retTags = in.Own
			m.frames = append(m.frames, nf)
			m.charge(costCallBase + costCallArg*int64(len(nf.Params)))
			m.edge(pc, callee.Start)
			next = callee.Start
		case OpRet:
			var rv int64
			if in.Sub != 0 {
				rv = fr.Regs[in.A]
			}
			ret := fr.retAddr
			rr := fr.retReg
			m.frames = m.frames[:len(m.frames)-1]
			m.charge(costRet)
			if len(m.frames) == depth0 {
				retVal = rv
				m.pc = pc // leave pc on the return site
				return retVal, nil
			}
			caller := m.frames[len(m.frames)-1]
			m.setReg(caller, rr, rv, 0)
			for _, t := range fr.retTags {
				if !t.Pre {
					m.applyTag(caller, t)
				}
			}
			m.edge(pc, ret)
			next = ret
		case OpJmp:
			m.charge(costJmp)
			m.JmpsRun++
			m.edge(pc, int(in.Imm))
			next = int(in.Imm)
		case OpBr:
			taken := fr.Regs[in.A] != 0
			if in.Sub != 0 {
				taken = !taken
			}
			if taken {
				m.charge(costBrTaken)
				m.TakenBr++
				m.edge(pc, int(in.Imm))
				next = int(in.Imm)
			} else {
				m.charge(costBrFall)
				m.FallBr++
				m.edge(pc, next)
			}
		case OpPrint:
			m.out = append(m.out, fr.Regs[in.A])
			m.charge(costPrint)
		default:
			return 0, fmt.Errorf("vm: bad opcode %v at %d", in.Op, pc)
		}

		if in.Op != OpCall { // call tags defer to the matching return
			for _, t := range in.Own {
				if !t.Pre {
					m.applyTag(m.Frame(), t)
				}
			}
		}
		m.lastLoadReg = loadReg
		m.pc = next
	}
}

// setReg writes a register and clears its variable ownership; an owner
// tag on the same instruction reasserts it afterwards.
func (m *Machine) setReg(fr *Frame, d uint8, v, lane int64) {
	fr.Regs[d] = v
	fr.Lanes[d] = lane
	fr.Owner[d] = 0
}

func (m *Machine) applyTag(fr *Frame, t OwnerTag) {
	if fr == nil {
		return
	}
	if t.Reg >= 0 && int(t.Reg) < NumRegs {
		fr.Owner[t.Reg] = t.Var
	}
	if t.Slot >= 0 && int(t.Slot) < len(fr.SlotOwn) {
		fr.SlotOwn[t.Slot] = t.Var
	}
}

func binCost(sub uint8) int64 {
	switch sub {
	case BinMul:
		return costMul
	case BinDiv, BinRem:
		return costDivRem
	}
	return costDefault
}

func (m *Machine) aload(h, idx int64) int64 {
	a := m.Heap(h)
	if idx < 0 || idx >= int64(len(a)) {
		return 0
	}
	return a[idx]
}

func (m *Machine) astore(h, idx, v int64) {
	a := m.Heap(h)
	if idx < 0 || idx >= int64(len(a)) {
		return
	}
	a[idx] = v
}
