package vm

import (
	"errors"
	"fmt"
	"testing"
)

// vmState snapshots everything the machine model observably computes.
type vmState struct {
	ret    int64
	err    string
	out    []int64
	cycles int64
	steps  int64
	stall  int64
	icm    int64
	taken  int64
	fall   int64
	jmps   int64
	slots  int64
}

func runEngine(bin *Binary, eng Engine, budget int64, call string, args ...int64) vmState {
	m := New(bin)
	m.Engine = eng
	if budget > 0 {
		m.StepBudget = budget
	}
	ret, err := m.Call(call, args...)
	st := vmState{
		ret: ret, out: m.Output(),
		cycles: m.Cycles, steps: m.Steps, stall: m.StallCycles,
		icm: m.ICacheMisses, taken: m.TakenBr, fall: m.FallBr,
		jmps: m.JmpsRun, slots: m.SlotOpsRun,
	}
	if err != nil {
		st.err = err.Error()
	}
	return st
}

// checkEngines asserts the reference, plain, and fused cores agree on
// the complete observable machine state for one call.
func checkEngines(t *testing.T, bin *Binary, budget int64, call string, args ...int64) vmState {
	t.Helper()
	ref := runEngine(bin, EngineReference, budget, call, args...)
	for _, eng := range []Engine{EnginePlain, EngineFused, EngineAuto} {
		got := runEngine(bin, eng, budget, call, args...)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Errorf("engine %d diverges from reference:\n ref %+v\n got %+v", eng, ref, got)
		}
	}
	return ref
}

func TestEnginesAgreeOnTinyBinary(t *testing.T) {
	checkEngines(t, tinyBinary(), 0, "main")
	checkEngines(t, tinyBinary(), 0, "inc", 41)
}

// fusionBinary exercises every superinstruction pattern plus the two
// hazards fusion must preserve: a jump landing on the second micro-op of
// a fusable pair, and a load-use stall crossing into and out of a pair.
func fusionBinary() *Binary {
	return &Binary{
		Funcs: []FuncInfo{{Name: "main", Start: 0, End: 24, NumSlots: 4}},
		Code: []Instr{
			{Op: OpProlog},
			{Op: OpConst, D: 0, Imm: 9},               // 1
			{Op: OpStoreSlot, A: 0, Imm: 0},           // 2: jump target (loop head)
			{Op: OpLoadSlot, D: 1, Imm: 0},            // 3: loadslot+binimm pair (intra-pair stall)
			{Op: OpBinImm, Sub: BinAdd, A: 1, D: 1, Imm: 1}, // 4
			{Op: OpBinImm, Sub: BinRem, A: 1, D: 2, Imm: 5}, // 5: binimm+store pair
			{Op: OpStoreSlot, A: 2, Imm: 1},           // 6
			{Op: OpLoadSlot, D: 2, Imm: 1},            // 7: loadslot+bin pair (intra-pair stall)
			{Op: OpBin, Sub: BinAdd, A: 2, B: 1, D: 3}, // 8
			{Op: OpPrint, A: 3},                       // 9
			{Op: OpBinImm, Sub: BinSub, A: 0, D: 0, Imm: 1}, // 10: binimm+br pair
			{Op: OpBr, A: 0, Imm: 2},                  // 11: loop back edge
			{Op: OpLoadSlot, D: 1, Imm: 0},            // 12: load feeding the NEXT pair head (stall into pair)
			{Op: OpBin, Sub: BinLt, A: 1, B: 0, D: 2}, // 13: bin+br pair, reads loaded r1 -> stall
			{Op: OpBr, A: 2, Imm: 16},                 // 14
			{Op: OpPrint, A: 1},                       // 15
			{Op: OpConst, D: 3, Imm: 77},              // 16: jump target
			{Op: OpStoreSlot, A: 3, Imm: 2},           // 17
			{Op: OpLoadSlot, D: 3, Imm: 2},            // 18: loadslot+loadslot pair
			{Op: OpLoadSlot, D: 1, Imm: 0},            // 19
			{Op: OpBinImm, Sub: BinMul, A: 3, D: 3, Imm: 2}, // 20: binimm+binimm pair
			{Op: OpBinImm, Sub: BinAdd, A: 3, D: 3, Imm: 1}, // 21
			{Op: OpPrint, A: 3},                       // 22
			{Op: OpRet},                               // 23
		},
	}
}

func TestEnginesAgreeOnFusionPatterns(t *testing.T) {
	st := checkEngines(t, fusionBinary(), 0, "main")
	if st.err != "" {
		t.Fatalf("run failed: %s", st.err)
	}
	if st.stall == 0 {
		t.Error("fusion binary should exercise load-use stalls")
	}
	if st.taken == 0 || st.fall == 0 {
		t.Error("fusion binary should exercise both branch directions")
	}
}

// TestJumpIntoPairTail locks the address-preservation property: a branch
// that lands on the second instruction of a fused pair must execute it
// via its plain handler, not skip it or re-run the head.
func TestJumpIntoPairTail(t *testing.T) {
	bin := &Binary{
		Funcs: []FuncInfo{{Name: "main", Start: 0, End: 8, NumSlots: 1}},
		Code: []Instr{
			{Op: OpProlog},
			{Op: OpConst, D: 0, Imm: 5},
			{Op: OpStoreSlot, A: 0, Imm: 0},
			{Op: OpJmp, Imm: 5}, // jumps into the tail of the (loadslot, binimm) pair below
			{Op: OpLoadSlot, D: 1, Imm: 0}, // pair head: must NOT run on the jump path
			{Op: OpBinImm, Sub: BinAdd, A: 1, D: 1, Imm: 10}, // pair tail and jump target
			{Op: OpPrint, A: 1},
			{Op: OpRet},
		},
	}
	st := checkEngines(t, bin, 0, "main")
	if len(st.out) != 1 || st.out[0] != 10 {
		t.Fatalf("output = %v, want [10] (pair head must not run on the jump path)", st.out)
	}
}

// TestStepBudgetMidPair locks budget accounting across a fused pair: a
// budget that expires on the second micro-op must fail at the same step
// count as the unfused engines.
func TestStepBudgetMidPair(t *testing.T) {
	bin := fusionBinary()
	full := runEngine(bin, EngineReference, 0, "main")
	for budget := int64(1); budget <= full.steps; budget++ {
		ref := runEngine(bin, EngineReference, budget, "main")
		fused := runEngine(bin, EngineFused, budget, "main")
		if fmt.Sprint(ref) != fmt.Sprint(fused) {
			t.Fatalf("budget %d: fused diverges:\n ref %+v\n got %+v", budget, ref, fused)
		}
		if ref.err != "" && !errors.Is(ErrStepBudget, ErrBudget) {
			t.Fatal("sentinel wiring broken")
		}
	}
}

// TestOwnerTagsAcrossFusion locks tag ordering inside superinstructions:
// op1's post tags and op2's pre/post tags must land exactly as in the
// reference loop.
func TestOwnerTagsAcrossFusion(t *testing.T) {
	bin := &Binary{
		Funcs: []FuncInfo{{Name: "main", Start: 0, End: 5, NumSlots: 2}},
		Code: []Instr{
			{Op: OpProlog},
			{Op: OpConst, D: 0, Imm: 3, Own: []OwnerTag{{Reg: 0, Slot: -1, Var: 4}}},
			{Op: OpStoreSlot, A: 0, Imm: 0, Own: []OwnerTag{{Reg: -1, Slot: 0, Var: 4}}},
			{Op: OpBinImm, Sub: BinAdd, A: 0, D: 1, Imm: 1, Own: []OwnerTag{{Reg: 1, Slot: -1, Var: 6}}},
			{Op: OpRet},
		},
	}
	for _, eng := range []Engine{EngineReference, EnginePlain, EngineFused} {
		m := New(bin)
		m.Engine = eng
		var fr *Frame
		m.OnBreak = func(mm *Machine, addr int) { fr = mm.Frame() }
		// The fused core does not consult breakpoints (by contract), so
		// owner state is inspected at the break only on the engines that
		// honor it; the fused core's tag handling is covered by the
		// counter/output agreement in checkEngines and the corpus
		// differential, which exercise availability-sensitive traces.
		if eng != EngineFused {
			m.SetBreak(4)
		}
		if _, err := m.Call("main"); err != nil {
			t.Fatal(err)
		}
		if eng != EngineFused {
			if fr == nil {
				t.Fatalf("engine %d: break at ret never fired", eng)
			}
			if fr.Owner[0] != 4 || fr.Owner[1] != 6 || fr.SlotOwn[0] != 4 {
				t.Errorf("engine %d: owners = r0:%d r1:%d s0:%d, want 4/6/4",
					eng, fr.Owner[0], fr.Owner[1], fr.SlotOwn[0])
			}
		}
	}
}

// TestFusedStreamAddresses locks the decode-level invariants: every
// dinstr keeps its original address, pair tails keep plain handlers, and
// no pair tail is a jump target.
func TestFusedStreamAddresses(t *testing.T) {
	bin := fusionBinary()
	fused := bin.fusedProg()
	targets := bin.jumpTargets()
	pairs := 0
	for i := range fused {
		d := &fused[i]
		if int(d.pc) != i {
			t.Fatalf("dinstr %d carries pc %d", i, d.pc)
		}
		if d.s2 != nil {
			pairs++
			if targets[d.s2.pc] {
				t.Errorf("pair at %d consumed a jump target at %d", i, d.s2.pc)
			}
			if int(d.next) != i+2 {
				t.Errorf("pair at %d: next = %d, want %d", i, d.next, i+2)
			}
		}
	}
	if pairs < 6 {
		t.Errorf("fusion found %d pairs in the fusion binary, want >= 6", pairs)
	}
}

// TestPairCountsHistogram locks the telemetry that selected the fused
// set: the instrumented core's dynamic pair histogram must rank the
// fusable patterns among the hot pairs on a branchy slot-heavy program.
func TestPairCountsHistogram(t *testing.T) {
	m := New(fusionBinary())
	m.EnablePairCounts()
	if _, err := m.Call("main"); err != nil {
		t.Fatal(err)
	}
	if len(m.PairCounts) == 0 {
		t.Fatal("no pairs recorded")
	}
	key := func(a, b Op) uint16 { return uint16(a)<<8 | uint16(b) }
	for _, k := range []uint16{
		key(OpBinImm, OpBr),
		key(OpLoadSlot, OpBinImm),
		key(OpBinImm, OpStoreSlot),
		key(OpBinImm, OpBinImm),
		key(OpLoadSlot, OpLoadSlot),
		key(OpLoadSlot, OpBin),
		key(OpBin, OpBr),
	} {
		if m.PairCounts[k] == 0 {
			t.Errorf("fused pair %v->%v never observed dynamically",
				Op(k>>8), Op(k&0xff))
		}
	}
}

// TestBreaksForceInstrumentedCore locks engine auto-selection: planted
// breakpoints must route Auto to the instrumented core and fire OnBreak.
func TestBreaksForceInstrumentedCore(t *testing.T) {
	m := New(tinyBinary())
	hits := 0
	m.SetBreak(3)
	m.OnBreak = func(mm *Machine, addr int) { hits++ }
	if _, err := m.Call("main"); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("break hits = %d, want 1", hits)
	}
	if m.HasBreak(3) != true || m.BreakCount() != 1 {
		t.Error("break bookkeeping broken")
	}
	m.ClearBreak(3)
	if m.HasBreak(3) || m.BreakCount() != 0 {
		t.Error("ClearBreak bookkeeping broken")
	}
}

// TestFramePoolReuse locks the recycling fast path: repeated calls on
// one machine must not leak per-call frame state through the pool.
func TestFramePoolReuse(t *testing.T) {
	m := New(tinyBinary())
	want, err := m.Call("inc", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, err := m.Call("inc", 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("call %d: ret = %d, want %d (stale pooled frame state)", i, got, want)
		}
	}
}
