// Direct-threaded execution cores. See decode.go for the predecoding
// that builds the handler streams and machine.go (referenceRun) for the
// executable specification these cores are differentially tested
// against: identical output, cycles, steps, stalls, icache misses, and
// branch/slot/jump counters on every program, locked by exec_test.go and
// difftest's fused-vs-unfused corpus sweep.
package vm

import "fmt"

// fail traps the current dispatch loop with an error.
func (m *Machine) fail(err error) {
	m.trap = err
	m.stop = true
}

// execFast runs the superinstruction stream with no per-step
// instrumentation checks. Selected when no breakpoints, coverage,
// sampling, or pair counting are active.
func (m *Machine) execFast(code []dinstr) (int64, error) {
	m.stop = false
	m.trap = nil
	for {
		d := &code[m.pc]
		m.Steps++
		if m.Steps > m.StepBudget {
			return 0, ErrStepBudget
		}
		m.icache(int(d.pc))
		if m.lastLoadMask&d.readMask != 0 {
			m.Cycles += costLoadUse
			m.StallCycles += costLoadUse
		}
		if d.pre != nil {
			fr := m.fr
			for _, t := range d.pre {
				m.applyTag(fr, t)
			}
		}
		d.fn(m, d)
		if m.stop {
			if m.trap != nil {
				return 0, m.trap
			}
			return m.retVal, nil
		}
		if d.post != nil {
			fr := m.fr
			for _, t := range d.post {
				m.applyTag(fr, t)
			}
		}
		m.lastLoadMask = d.loadBit
	}
}

// execInstr runs the unfused stream with the full per-step
// instrumentation of the reference interpreter: breakpoints, address
// coverage, and the opcode-pair histogram.
func (m *Machine) execInstr(code []dinstr) (int64, error) {
	m.stop = false
	m.trap = nil
	for {
		d := &code[m.pc]
		m.Steps++
		if m.Steps > m.StepBudget {
			return 0, ErrStepBudget
		}
		if m.breaks != nil && m.breaks[d.pc] != 0 && m.OnBreak != nil {
			m.OnBreak(m, int(d.pc))
		}
		if m.CovAddrs != nil {
			m.CovAddrs[int(d.pc)] = true
		}
		if m.PairCounts != nil {
			m.PairCounts[uint16(m.prevOp)<<8|uint16(d.op)]++
			m.prevOp = d.op
		}
		m.icache(int(d.pc))
		if m.lastLoadMask&d.readMask != 0 {
			m.Cycles += costLoadUse
			m.StallCycles += costLoadUse
		}
		if d.pre != nil {
			fr := m.fr
			for _, t := range d.pre {
				m.applyTag(fr, t)
			}
		}
		d.fn(m, d)
		if m.stop {
			if m.trap != nil {
				return 0, m.trap
			}
			return m.retVal, nil
		}
		if d.post != nil {
			fr := m.fr
			for _, t := range d.post {
				m.applyTag(fr, t)
			}
		}
		m.lastLoadMask = d.loadBit
	}
}

// ---- Plain handlers: one per opcode, 1:1 with referenceRun's switch ----

var plainHandlers = [...]func(*Machine, *dinstr){
	OpNop:       hNop,
	OpProlog:    hProlog,
	OpConst:     hConst,
	OpMov:       hMov,
	OpBin:       hBin,
	OpBinImm:    hBinImm,
	OpNeg:       hNeg,
	OpNot:       hNot,
	OpSelect:    hSelect,
	OpLoadSlot:  hLoadSlot,
	OpStoreSlot: hStoreSlot,
	OpLoadParam: hLoadParam,
	OpGLoad:     hGLoad,
	OpGStore:    hGStore,
	OpNewArr:    hNewArr,
	OpALoad:     hALoad,
	OpAStore:    hAStore,
	OpLen:       hLen,
	OpVLoad2:    hVLoad2,
	OpVBin:      hVBin,
	OpVStore2:   hVStore2,
	OpArg:       hArg,
	OpCall:      hCall,
	OpRet:       hRet,
	OpJmp:       hJmp,
	OpBr:        hBr,
	OpPrint:     hPrint,
}

func hBadOp(m *Machine, d *dinstr) {
	m.fail(fmt.Errorf("vm: bad opcode %v at %d", d.op, d.pc))
}

func hNop(m *Machine, d *dinstr) {
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hProlog(m *Machine, d *dinstr) {
	fr := m.fr
	fr.PrologueDone = true
	m.charge(2 + int64(len(fr.Slots))/8)
	m.pc = int(d.next)
}

func hConst(m *Machine, d *dinstr) {
	m.setReg(m.fr, d.dd, d.imm, 0)
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hMov(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, fr.Regs[d.a], fr.Lanes[d.a])
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hBin(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, evalBin(d.sub, fr.Regs[d.a], fr.Regs[d.b]), 0)
	m.charge(d.cost)
	m.pc = int(d.next)
}

func hBinImm(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, evalBin(d.sub, fr.Regs[d.a], d.imm), 0)
	m.charge(d.cost)
	m.pc = int(d.next)
}

func hNeg(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, -fr.Regs[d.a], 0)
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hNot(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, b2i(fr.Regs[d.a] == 0), 0)
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hSelect(m *Machine, d *dinstr) {
	fr := m.fr
	v := fr.Regs[d.c]
	if fr.Regs[d.a] != 0 {
		v = fr.Regs[d.b]
	}
	m.setReg(fr, d.dd, v, 0)
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hLoadSlot(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, fr.Slots[d.imm], 0)
	m.charge(costLoad)
	m.SlotOpsRun++
	m.pc = int(d.next)
}

func hStoreSlot(m *Machine, d *dinstr) {
	fr := m.fr
	fr.Slots[d.imm] = fr.Regs[d.a]
	fr.SlotOwn[d.imm] = 0
	m.charge(costStore)
	m.SlotOpsRun++
	m.pc = int(d.next)
}

func hLoadParam(m *Machine, d *dinstr) {
	fr := m.fr
	var v int64
	if int(d.imm) < len(fr.Params) {
		v = fr.Params[d.imm]
	}
	m.setReg(fr, d.dd, v, 0)
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hGLoad(m *Machine, d *dinstr) {
	m.setReg(m.fr, d.dd, m.Globals[d.imm], 0)
	m.charge(costLoad)
	m.pc = int(d.next)
}

func hGStore(m *Machine, d *dinstr) {
	m.Globals[d.imm] = m.fr.Regs[d.a]
	m.charge(costStore)
	m.pc = int(d.next)
}

func hNewArr(m *Machine, d *dinstr) {
	fr := m.fr
	n := fr.Regs[d.a]
	if n < 0 {
		n = 0
	}
	if m.HeapBudget > 0 && m.heapWords+n > m.HeapBudget {
		m.fail(ErrHeapBudget)
		return
	}
	m.setReg(fr, d.dd, m.alloc(fr.Regs[d.a]), 0)
	m.charge(costNewArrMin + n/8)
	m.pc = int(d.next)
}

func hALoad(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, m.aload(fr.Regs[d.a], fr.Regs[d.b]), 0)
	m.charge(costLoad)
	m.pc = int(d.next)
}

func hAStore(m *Machine, d *dinstr) {
	fr := m.fr
	m.astore(fr.Regs[d.a], fr.Regs[d.b], fr.Regs[d.c])
	m.charge(costStore)
	m.pc = int(d.next)
}

func hLen(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, int64(len(m.Heap(fr.Regs[d.a]))), 0)
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hVLoad2(m *Machine, d *dinstr) {
	fr := m.fr
	h, idx := fr.Regs[d.a], fr.Regs[d.b]
	m.setReg(fr, d.dd, m.aload(h, idx), m.aload(h, idx+1))
	m.charge(costVLoad)
	m.pc = int(d.next)
}

func hVBin(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd,
		evalBin(d.sub, fr.Regs[d.a], fr.Regs[d.b]),
		evalBin(d.sub, fr.Lanes[d.a], fr.Lanes[d.b]))
	m.charge(d.cost)
	m.pc = int(d.next)
}

func hVStore2(m *Machine, d *dinstr) {
	fr := m.fr
	h, idx := fr.Regs[d.a], fr.Regs[d.b]
	m.astore(h, idx, fr.Regs[d.c])
	m.astore(h, idx+1, fr.Lanes[d.c])
	m.charge(costVStore)
	m.pc = int(d.next)
}

func hArg(m *Machine, d *dinstr) {
	m.argBuf = append(m.argBuf, m.fr.Regs[d.a])
	m.charge(costDefault)
	m.pc = int(d.next)
}

func hCall(m *Machine, d *dinstr) {
	callee := &m.Bin.Funcs[d.fidx]
	fr := m.newFrame(int(d.fidx), callee.NumSlots, int(d.next), d.dd)
	fr.Params = append(fr.Params, m.argBuf...)
	m.argBuf = m.argBuf[:0]
	fr.retTags = d.ownAll
	m.frames = append(m.frames, fr)
	m.fr = fr
	m.charge(costCallBase + costCallArg*int64(len(fr.Params)))
	m.edge(int(d.pc), int(d.tgt))
	m.pc = int(d.tgt)
}

func hRet(m *Machine, d *dinstr) {
	fr := m.fr
	var rv int64
	if d.sub != 0 {
		rv = fr.Regs[d.a]
	}
	ret := fr.retAddr
	rr := fr.retReg
	retTags := fr.retTags
	m.frames = m.frames[:len(m.frames)-1]
	m.charge(costRet)
	if len(m.frames) == m.depth0 {
		if n := len(m.frames); n > 0 {
			m.fr = m.frames[n-1]
		} else {
			m.fr = nil
		}
		m.freeFrame(fr)
		m.retVal = rv
		m.stop = true
		// pc stays on the return site, matching the reference loop.
		return
	}
	caller := m.frames[len(m.frames)-1]
	m.fr = caller
	m.setReg(caller, rr, rv, 0)
	for _, t := range retTags {
		if !t.Pre {
			m.applyTag(caller, t)
		}
	}
	m.edge(int(d.pc), ret)
	m.pc = ret
	m.freeFrame(fr)
}

func hJmp(m *Machine, d *dinstr) {
	m.charge(costJmp)
	m.JmpsRun++
	m.edge(int(d.pc), int(d.tgt))
	m.pc = int(d.tgt)
}

func hBr(m *Machine, d *dinstr) {
	fr := m.fr
	taken := fr.Regs[d.a] != 0
	if d.sub != 0 {
		taken = !taken
	}
	if taken {
		m.charge(costBrTaken)
		m.TakenBr++
		m.edge(int(d.pc), int(d.tgt))
		m.pc = int(d.tgt)
	} else {
		m.charge(costBrFall)
		m.FallBr++
		m.edge(int(d.pc), int(d.next))
		m.pc = int(d.next)
	}
}

func hPrint(m *Machine, d *dinstr) {
	m.out = append(m.out, m.fr.Regs[d.a])
	m.charge(costPrint)
	m.pc = int(d.next)
}

// ---- Superinstruction handlers ----
//
// Each fused handler executes two micro-ops under one dispatch. The
// second micro-op replays the loop prologue exactly: step count and
// budget check, icache charge for its own address, the statically known
// intra-pair load-use stall, and its pre-tags. The dispatch loop
// applies the pair's pre (op1's) before and post (op2's) after; op1's
// post tags are d.mid.

// fuseMid applies op1's post tags between the micro-ops.
func fuseMid(m *Machine, d *dinstr) {
	if d.mid != nil {
		fr := m.fr
		for _, t := range d.mid {
			m.applyTag(fr, t)
		}
	}
}

// fuseStep2 runs the second micro-op's step prologue; false means the
// step budget trapped and the handler must return.
func fuseStep2(m *Machine, d *dinstr) bool {
	m.Steps++
	if m.Steps > m.StepBudget {
		m.fail(ErrStepBudget)
		return false
	}
	s := d.s2
	m.icache(int(s.pc))
	if d.stall2 != 0 {
		m.Cycles += d.stall2
		m.StallCycles += d.stall2
	}
	if s.pre != nil {
		fr := m.fr
		for _, t := range s.pre {
			m.applyTag(fr, t)
		}
	}
	return true
}

// fuseBr finishes a (..., br) pair.
func fuseBr(m *Machine, d *dinstr) {
	s := d.s2
	fr := m.fr
	taken := fr.Regs[s.a] != 0
	if s.sub != 0 {
		taken = !taken
	}
	if taken {
		m.charge(costBrTaken)
		m.TakenBr++
		m.edge(int(s.pc), int(s.tgt))
		m.pc = int(s.tgt)
	} else {
		m.charge(costBrFall)
		m.FallBr++
		m.edge(int(s.pc), int(d.next))
		m.pc = int(d.next)
	}
}

// fuseStore finishes a (..., storeslot) pair.
func fuseStore(m *Machine, d *dinstr) {
	s := d.s2
	fr := m.fr
	fr.Slots[s.imm] = fr.Regs[s.a]
	fr.SlotOwn[s.imm] = 0
	m.charge(costStore)
	m.SlotOpsRun++
	m.pc = int(d.next)
}

func hFuseBinBr(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, evalBin(d.sub, fr.Regs[d.a], fr.Regs[d.b]), 0)
	m.charge(d.cost)
	fuseMid(m, d)
	if !fuseStep2(m, d) {
		return
	}
	fuseBr(m, d)
}

func hFuseBinImmBr(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, evalBin(d.sub, fr.Regs[d.a], d.imm), 0)
	m.charge(d.cost)
	fuseMid(m, d)
	if !fuseStep2(m, d) {
		return
	}
	fuseBr(m, d)
}

func hFuseBinImmStore(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, evalBin(d.sub, fr.Regs[d.a], d.imm), 0)
	m.charge(d.cost)
	fuseMid(m, d)
	if !fuseStep2(m, d) {
		return
	}
	fuseStore(m, d)
}

func hFuseBinImmBinImm(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, evalBin(d.sub, fr.Regs[d.a], d.imm), 0)
	m.charge(d.cost)
	fuseMid(m, d)
	if !fuseStep2(m, d) {
		return
	}
	s := d.s2
	m.setReg(fr, s.dd, evalBin(s.sub, fr.Regs[s.a], s.imm), 0)
	m.charge(s.cost)
	m.pc = int(d.next)
}

func hFuseLoadSlotLoadSlot(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, fr.Slots[d.imm], 0)
	m.charge(costLoad)
	m.SlotOpsRun++
	fuseMid(m, d)
	if !fuseStep2(m, d) {
		return
	}
	s := d.s2
	m.setReg(fr, s.dd, fr.Slots[s.imm], 0)
	m.charge(costLoad)
	m.SlotOpsRun++
	m.pc = int(d.next)
}

func hFuseLoadSlotBin(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, fr.Slots[d.imm], 0)
	m.charge(costLoad)
	m.SlotOpsRun++
	fuseMid(m, d)
	if !fuseStep2(m, d) {
		return
	}
	s := d.s2
	m.setReg(fr, s.dd, evalBin(s.sub, fr.Regs[s.a], fr.Regs[s.b]), 0)
	m.charge(s.cost)
	m.pc = int(d.next)
}

func hFuseLoadSlotBinImm(m *Machine, d *dinstr) {
	fr := m.fr
	m.setReg(fr, d.dd, fr.Slots[d.imm], 0)
	m.charge(costLoad)
	m.SlotOpsRun++
	fuseMid(m, d)
	if !fuseStep2(m, d) {
		return
	}
	s := d.s2
	m.setReg(fr, s.dd, evalBin(s.sub, fr.Regs[s.a], s.imm), 0)
	m.charge(s.cost)
	m.pc = int(d.next)
}
