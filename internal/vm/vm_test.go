package vm

import (
	"errors"
	"testing"
	"testing/quick"
)

// tinyBinary builds a handwritten binary:
//
//	func main: r0 = 7; r1 = 35; r2 = r0 * r1; print r2;
//	           arg r2; call inc; print r3; ret
//	func inc:  r0 = param0; r1 = r0 + 1; ret r1
func tinyBinary() *Binary {
	return &Binary{
		Funcs: []FuncInfo{
			{Name: "main", Start: 0, End: 8, NumSlots: 2},
			{Name: "inc", Start: 8, End: 11, NParams: 1},
		},
		Code: []Instr{
			{Op: OpProlog},
			{Op: OpConst, D: 0, Imm: 7, Line: 2},
			{Op: OpConst, D: 1, Imm: 35, Line: 3},
			{Op: OpBin, Sub: BinMul, A: 0, B: 1, D: 2, Line: 4},
			{Op: OpPrint, A: 2, Line: 5},
			{Op: OpArg, A: 2, Line: 6},
			{Op: OpCall, D: 3, Imm: 1, Line: 6},
			{Op: OpRet},
			// inc:
			{Op: OpLoadParam, D: 0, Imm: 0, Line: 10},
			{Op: OpBinImm, Sub: BinAdd, A: 0, D: 1, Imm: 1, Line: 11},
			{Op: OpRet, Sub: 1, A: 1, Line: 12},
		},
	}
}

func TestExecution(t *testing.T) {
	m := New(tinyBinary())
	ret, err := m.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if ret != 0 {
		t.Errorf("ret = %d", ret)
	}
	out := m.Output()
	if len(out) != 1 || out[0] != 245 {
		t.Fatalf("output = %v, want [245]", out)
	}
	if m.Cycles == 0 || m.Steps == 0 {
		t.Error("no cost accounted")
	}
}

func TestCallReturnValue(t *testing.T) {
	m := New(tinyBinary())
	ret, err := m.Call("inc", 41)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Fatalf("inc(41) = %d", ret)
	}
}

func TestStepBudget(t *testing.T) {
	bin := &Binary{
		Funcs: []FuncInfo{{Name: "spin", Start: 0, End: 1}},
		Code:  []Instr{{Op: OpJmp, Imm: 0}},
	}
	m := New(bin)
	m.StepBudget = 100
	if _, err := m.Call("spin"); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestOwnerTagsAndClobbering(t *testing.T) {
	bin := &Binary{
		Funcs: []FuncInfo{{Name: "f", Start: 0, End: 4, NumSlots: 1}},
		Code: []Instr{
			{Op: OpConst, D: 2, Imm: 5, Own: []OwnerTag{{Reg: 2, Slot: -1, Var: 7}}},
			{Op: OpStoreSlot, A: 2, Imm: 0, Own: []OwnerTag{{Reg: -1, Slot: 0, Var: 9}}},
			{Op: OpConst, D: 2, Imm: 6}, // clobbers r2
			{Op: OpRet},
		},
	}
	m := New(bin)
	var ownedAt []int32
	for _, a := range []int{1, 2, 3} {
		m.SetBreak(a)
	}
	m.OnBreak = func(m *Machine, addr int) {
		ownedAt = append(ownedAt, m.Frame().Owner[2])
	}
	if _, err := m.Call("f"); err != nil {
		t.Fatal(err)
	}
	// At addr 1 the tag holds; at 2 still; at 3 the write cleared it.
	if len(ownedAt) != 3 || ownedAt[0] != 7 || ownedAt[1] != 7 || ownedAt[2] != 0 {
		t.Fatalf("owner history = %v, want [7 7 0]", ownedAt)
	}
	if m.Frame() != nil {
		t.Error("frame should be popped after return")
	}
}

func TestPrologueFlag(t *testing.T) {
	bin := &Binary{
		Funcs: []FuncInfo{{Name: "f", Start: 0, End: 3, NumSlots: 1}},
		Code: []Instr{
			{Op: OpConst, D: 0, Imm: 1},
			{Op: OpProlog},
			{Op: OpRet},
		},
	}
	m := New(bin)
	var flags []bool
	m.SetBreak(0)
	m.SetBreak(2)
	m.OnBreak = func(m *Machine, addr int) {
		flags = append(flags, m.Frame().PrologueDone)
	}
	if _, err := m.Call("f"); err != nil {
		t.Fatal(err)
	}
	if len(flags) != 2 || flags[0] || !flags[1] {
		t.Fatalf("prologue flags = %v, want [false true]", flags)
	}
}

func TestArraySemantics(t *testing.T) {
	m := New(&Binary{Funcs: []FuncInfo{{Name: "f", Start: 0, End: 1}}, Code: []Instr{{Op: OpRet}}})
	h := m.NewArray([]int64{10, 20, 30})
	if got := m.aload(h, 1); got != 20 {
		t.Errorf("aload = %d", got)
	}
	if got := m.aload(h, -1); got != 0 {
		t.Error("negative index should read 0")
	}
	if got := m.aload(h, 3); got != 0 {
		t.Error("OOB index should read 0")
	}
	m.astore(h, 99, 5) // no-op
	m.astore(h, 0, 5)
	if m.Heap(h)[0] != 5 {
		t.Error("in-bounds store lost")
	}
	if m.Heap(12345) != nil {
		t.Error("bad handle should be nil")
	}
}

// TestEvalBinAgreesWithIR (property): the VM's binary evaluator and the
// IR interpreter's must agree on every operation — they implement the
// same MiniC semantics independently.
func TestEvalBinAgreesWithIR(t *testing.T) {
	subs := []uint8{BinAdd, BinSub, BinMul, BinDiv, BinRem, BinAnd, BinOr,
		BinXor, BinShl, BinShr, BinEq, BinNe, BinLt, BinLe, BinGt, BinGe}
	check := func(x, y int64, si uint8) bool {
		sub := subs[int(si)%len(subs)]
		got := evalBin(sub, x, y)
		want := referenceEval(sub, x, y)
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// referenceEval is an independent spec-level evaluator.
func referenceEval(sub uint8, x, y int64) int64 {
	b := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch sub {
	case BinAdd:
		return x + y
	case BinSub:
		return x - y
	case BinMul:
		return x * y
	case BinDiv:
		if y == 0 {
			return 0
		}
		if x == -1<<63 && y == -1 {
			return x
		}
		return x / y
	case BinRem:
		if y == 0 || (x == -1<<63 && y == -1) {
			return 0
		}
		return x % y
	case BinAnd:
		return x & y
	case BinOr:
		return x | y
	case BinXor:
		return x ^ y
	case BinShl:
		return x << uint(y&63)
	case BinShr:
		return x >> uint(y&63)
	case BinEq:
		return b(x == y)
	case BinNe:
		return b(x != y)
	case BinLt:
		return b(x < y)
	case BinLe:
		return b(x <= y)
	case BinGt:
		return b(x > y)
	case BinGe:
		return b(x >= y)
	}
	return 0
}

func TestTextHashIgnoresDebugFields(t *testing.T) {
	a := tinyBinary()
	b := tinyBinary()
	b.Code[1].Line = 99
	b.Code[1].Own = []OwnerTag{{Reg: 0, Slot: -1, Var: 3}}
	if a.TextHash() != b.TextHash() {
		t.Fatal("debug metadata changed the .text hash")
	}
	b.Code[1].Imm = 8
	if a.TextHash() == b.TextHash() {
		t.Fatal("semantic change not reflected in the .text hash")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, int64) {
		m := New(tinyBinary())
		m.SampleEvery = 3
		m.Call("main")
		return m.Cycles, int64(len(m.Samples))
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}

func TestHeapBudget(t *testing.T) {
	// r0 = 1000; r1 = newarr r0; ret
	bin := &Binary{
		Funcs: []FuncInfo{{Name: "alloc", Start: 0, End: 3}},
		Code: []Instr{
			{Op: OpConst, D: 0, Imm: 1000},
			{Op: OpNewArr, A: 0, D: 1},
			{Op: OpRet},
		},
	}
	m := New(bin)
	m.HeapBudget = 100
	_, err := m.Call("alloc")
	if !errors.Is(err, ErrHeapBudget) {
		t.Fatalf("err = %v, want ErrHeapBudget", err)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatal("ErrHeapBudget must match the base ErrBudget sentinel")
	}
	// Unset (the default), the same allocation succeeds under the silent
	// MaxHeapWords clamp semantics the differential tests rely on.
	if _, err := New(bin).Call("alloc"); err != nil {
		t.Fatalf("default machine rejected allocation: %v", err)
	}
	// A budget at least as large as the allocation also succeeds.
	m3 := New(bin)
	m3.HeapBudget = 1000
	if _, err := m3.Call("alloc"); err != nil {
		t.Fatalf("in-budget allocation rejected: %v", err)
	}
}
