// Predecoding for the direct-threaded execution cores (exec.go).
//
// The switch-dispatch interpreter (machine.go referenceRun) pays for
// every instruction twice: once to decode the opcode in a 27-way switch
// and once more in the load-use stall check, a second switch over the
// same opcode. Predecoding runs both switches exactly once per
// instruction per binary: each Instr becomes a dinstr carrying its
// handler function pointer (slice-of-func direct threading), its static
// cycle cost, and a register read mask that reduces the stall check to
// one AND.
//
// The fused stream additionally replaces the hottest instruction pairs
// (chosen from the dynamic opcode-pair histogram, see
// TestPairHistogramCoversFusedPairs) with superinstructions: one handler
// executes both micro-ops with a single dispatch. Fusion never changes
// the machine model — a fused pair charges the same cycles, counts the
// same steps, models the same load-use stalls and icache misses, and
// applies the same owner tags as its two constituents. Because a jump
// may land on the second instruction of a pair, the fused stream keeps
// every instruction at its original address: the pair head executes both
// micro-ops and skips the successor slot, while the successor slot keeps
// its plain handler for incoming control flow.
package vm

import "sync"

// dinstr is one predecoded instruction.
type dinstr struct {
	fn  func(m *Machine, d *dinstr)
	op  Op
	sub uint8
	a   uint8
	b   uint8
	c   uint8
	dd  uint8
	// readMask has a bit per register the load-use stall model treats as
	// read by this instruction; loadBit is the dest-register bit when the
	// instruction is a load (the value lastLoadMask takes after it).
	readMask uint16
	loadBit  uint16
	imm      int64
	cost     int64 // static cycle cost; 0 for ops with dynamic cost
	pc       int32
	next     int32 // pc+1 (pc+2 for fused pairs)
	tgt      int32 // branch/jump target or callee entry
	fidx     int32 // callee function index (OpCall)
	pre      []OwnerTag
	post     []OwnerTag
	ownAll   []OwnerTag // full tag list (OpCall defers these to the return)
	// Fused-pair state: s2 is the plain dinstr of the second micro-op,
	// mid the first micro-op's post tags (applied between the two), and
	// stall2 the statically known intra-pair load-use stall.
	s2     *dinstr
	mid    []OwnerTag
	stall2 int64
}

// staticCost returns the fixed cycle cost of an opcode, or 0 when the
// cost is computed dynamically (prolog, newarr, call, branches).
func staticCost(in *Instr) int64 {
	switch in.Op {
	case OpBin, OpBinImm, OpVBin:
		return binCost(in.Sub)
	case OpLoadSlot, OpGLoad, OpALoad:
		return costLoad
	case OpStoreSlot, OpGStore, OpAStore:
		return costStore
	case OpVLoad2:
		return costVLoad
	case OpVStore2:
		return costVStore
	case OpJmp:
		return costJmp
	case OpRet:
		return costRet
	case OpPrint:
		return costPrint
	default:
		return costDefault
	}
}

// readMask reproduces the reference interpreter's load-use stall rules
// exactly: the registers listed here are the ones referenceRun's second
// switch treats as read, which is deliberately not the full semantic
// read set (e.g. OpSelect's condition C is excluded by the model).
func readMask(in *Instr) uint16 {
	bit := func(r uint8) uint16 { return 1 << (r & 15) }
	switch in.Op {
	case OpMov, OpNeg, OpNot, OpStoreSlot, OpGStore, OpNewArr,
		OpLen, OpArg, OpPrint, OpBr, OpBinImm:
		return bit(in.A)
	case OpBin, OpSelect, OpALoad, OpVLoad2, OpVBin:
		return bit(in.A) | bit(in.B)
	case OpAStore, OpVStore2:
		return bit(in.A) | bit(in.B) | bit(in.C)
	case OpRet:
		if in.Sub != 0 {
			return bit(in.A)
		}
	}
	return 0
}

// loadBit returns the dest-register bit for load instructions — the ops
// referenceRun records in lastLoadReg.
func loadBit(in *Instr) uint16 {
	switch in.Op {
	case OpLoadSlot, OpGLoad, OpALoad, OpVLoad2:
		return 1 << (in.D & 15)
	}
	return 0
}

// splitTags partitions owner tags into the pre-execution and
// post-execution sets the reference loop applies.
func splitTags(own []OwnerTag) (pre, post []OwnerTag) {
	for _, t := range own {
		if t.Pre {
			pre = append(pre, t)
		} else {
			post = append(post, t)
		}
	}
	return pre, post
}

// decodePlain lowers Code into the 1:1 direct-threaded stream.
func (b *Binary) decodePlain() []dinstr {
	code := make([]dinstr, len(b.Code))
	for i := range b.Code {
		in := &b.Code[i]
		d := &code[i]
		d.op = in.Op
		d.sub, d.a, d.b, d.c, d.dd = in.Sub, in.A, in.B, in.C, in.D
		d.imm = in.Imm
		d.cost = staticCost(in)
		d.readMask = readMask(in)
		d.loadBit = loadBit(in)
		d.pc = int32(i)
		d.next = int32(i + 1)
		d.ownAll = in.Own
		d.pre, d.post = splitTags(in.Own)
		if in.Op == OpCall {
			// Call tags defer to the matching return; the loop must not
			// apply them after the call dispatches.
			d.post = nil
			d.fidx = int32(in.Imm)
			if d.fidx >= 0 && int(d.fidx) < len(b.Funcs) {
				d.tgt = int32(b.Funcs[d.fidx].Start)
			}
		}
		if in.Op == OpJmp || in.Op == OpBr {
			d.tgt = int32(in.Imm)
		}
		if int(in.Op) < len(plainHandlers) && plainHandlers[in.Op] != nil {
			d.fn = plainHandlers[in.Op]
		} else {
			d.fn = hBadOp
		}
	}
	return code
}

// jumpTargets marks every address reachable other than by sequential
// flow from its predecessor: function entries, branch/jump targets, and
// call-return addresses. The second instruction of a fused pair must not
// be such a target.
func (b *Binary) jumpTargets() []bool {
	t := make([]bool, len(b.Code)+1)
	for i := range b.Funcs {
		s := b.Funcs[i].Start
		if s >= 0 && s < len(t) {
			t[s] = true
		}
	}
	for i := range b.Code {
		in := &b.Code[i]
		switch in.Op {
		case OpJmp, OpBr:
			if in.Imm >= 0 && in.Imm < int64(len(t)) {
				t[in.Imm] = true
			}
		case OpCall:
			t[i+1] = true
		}
	}
	return t
}

// fusePair returns the superinstruction handler for an (op1, op2)
// pair, or nil when the pair is not in the fused set. The set is the
// hottest pairs of the dynamic opcode-pair histogram over the SPEC
// stand-in workloads at O0 and O2 (locked by
// TestPairHistogramCoversFusedPairs): load-then-binop, binop chains,
// compare-and-branch, binop-then-store, and back-to-back slot loads.
// (const,storeslot) was evaluated and rejected: it covers under 0.1% of
// dynamically executed pairs at O2 — constant stores are what the
// optimizer deletes first.
func fusePair(op1, op2 *Instr) func(m *Machine, d *dinstr) {
	switch op1.Op {
	case OpBin:
		if op2.Op == OpBr {
			return hFuseBinBr
		}
	case OpBinImm:
		switch op2.Op {
		case OpBr:
			return hFuseBinImmBr
		case OpStoreSlot:
			return hFuseBinImmStore
		case OpBinImm:
			return hFuseBinImmBinImm
		}
	case OpLoadSlot:
		switch op2.Op {
		case OpBin:
			return hFuseLoadSlotBin
		case OpBinImm:
			return hFuseLoadSlotBinImm
		case OpLoadSlot:
			return hFuseLoadSlotLoadSlot
		}
	}
	return nil
}

// decodeFused lowers Code into the superinstruction stream: a copy of
// the plain stream with eligible pair heads replaced by fused handlers.
func (b *Binary) decodeFused() []dinstr {
	code := b.decodePlain()
	targets := b.jumpTargets()
	for i := 0; i+1 < len(code); i++ {
		if targets[i+1] {
			continue
		}
		fn := fusePair(&b.Code[i], &b.Code[i+1])
		if fn == nil {
			continue
		}
		d := &code[i]
		s2 := &code[i+1]
		d.fn = fn
		d.s2 = s2
		d.next = int32(i + 2)
		// Intra-pair stall: the second micro-op reading the first's
		// loaded register is statically known.
		if d.loadBit&s2.readMask != 0 {
			d.stall2 = costLoadUse
		}
		// After the pair, lastLoadMask reflects the second micro-op.
		d.loadBit = s2.loadBit
		// The dispatch loop applies d.pre before and d.post after the
		// whole pair; the handler applies op1's post (d.mid) and op2's
		// pre (d.s2.pre) between the micro-ops.
		d.mid = d.post
		d.post = s2.post
		i++ // never start a new pair on a consumed successor
	}
	return code
}

// decoded streams are cached per binary; builds are immutable once
// executed.
type decCache struct {
	plainOnce sync.Once
	plain     []dinstr
	fusedOnce sync.Once
	fused     []dinstr
}

func (b *Binary) plainProg() []dinstr {
	b.dec.plainOnce.Do(func() { b.dec.plain = b.decodePlain() })
	return b.dec.plain
}

func (b *Binary) fusedProg() []dinstr {
	b.dec.fusedOnce.Do(func() { b.dec.fused = b.decodeFused() })
	return b.dec.fused
}
