// Package vm defines the MiniC target machine: a register-based bytecode
// virtual machine with a deterministic cycle cost model.
//
// The cost model is what gives back-end optimizations measurable effect:
// loads have latency that scheduling can hide, taken branches cost more
// than fall-through (rewarding block placement), calls pay per-argument
// and prologue overhead (rewarding inlining and shrink-wrapping), and a
// small direct-mapped instruction cache rewards layout locality.
//
// The VM also maintains the runtime ground truth the debugger needs: a
// per-frame owner tag for every register and spill slot records which
// source variable's value it currently holds, so a DWARF-style location
// entry can be checked for materialization — locations that exist in the
// debug info but never hold the variable's value at runtime are exactly
// the static-method overestimation the paper corrects for.
package vm

import "fmt"

// NumRegs is the number of general-purpose registers (x86-64-like).
// Three are reserved by the register allocator as spill scratch.
const NumRegs = 16

// Op is a VM opcode.
type Op uint8

// VM opcodes.
const (
	OpNop    Op = iota
	OpProlog    // frame setup; cost scales with frame size
	OpConst     // R[D] = Imm
	OpMov       // R[D] = R[A]
	OpBin       // R[D] = R[A] <Sub> R[B]
	OpBinImm    // R[D] = R[A] <Sub> Imm
	OpNeg       // R[D] = -R[A]
	OpNot       // R[D] = R[A] == 0 ? 1 : 0
	OpSelect    // R[D] = R[A] != 0 ? R[B] : R[C]
	OpLoadSlot
	OpStoreSlot // slots[Imm] = R[A]
	OpLoadParam // R[D] = params[Imm]
	OpGLoad
	OpGStore // globals[Imm] = R[A]
	OpNewArr // R[D] = handle of new array of length R[A]
	OpALoad  // R[D] = arr(R[A])[R[B]]
	OpAStore // arr(R[A])[R[B]] = R[C]
	OpLen
	OpVLoad2  // R[D].lanes = arr(R[A])[R[B]], arr(R[A])[R[B]+1]
	OpVBin    // R[D].lanes = R[A].lanes <Sub> R[B].lanes
	OpVStore2 // arr(R[A])[R[B]], +1 = R[C].lanes
	OpArg     // stage R[A] as the next call argument
	OpCall    // R[D] = call Funcs[Imm](staged args)
	OpRet     // return R[A] if Sub != 0
	OpJmp     // pc = Imm
	OpBr      // if R[A] != 0 then pc = Imm
	OpPrint   // emit R[A]
)

// Binary sub-operation codes for OpBin/OpBinImm/OpVBin.
const (
	BinAdd uint8 = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

// OwnerTag records that after (or, with Pre, before) executing the
// instruction it is attached to, a register or spill slot holds the
// value of a source variable. Tags are debug metadata: they are excluded
// from the .text identity hash and have no semantic effect.
type OwnerTag struct {
	Reg  int8  // register index, or -1
	Slot int32 // spill slot index, or -1
	Var  int32 // symbol ID + 1
	Pre  bool
}

// Instr is one VM instruction.
type Instr struct {
	Op   Op
	Sub  uint8
	A    uint8
	B    uint8
	C    uint8
	D    uint8
	Imm  int64
	Line int32      // debug: source line, 0 = artificial
	Own  []OwnerTag // debug: owner transfers
}

// FuncInfo describes one function's code range and frame.
type FuncInfo struct {
	Name     string
	Start    int // first instruction address
	End      int // one past the last
	NumSlots int
	NParams  int
}

// GlobalInfo describes a module-level variable.
type GlobalInfo struct {
	Name    string
	IsArray bool
	Init    int64
}

// Binary is a fully linked MiniC executable.
type Binary struct {
	Code    []Instr
	Funcs   []FuncInfo
	Globals []GlobalInfo
	// Debug is the serialized debug-information section; see package
	// debuginfo. nil when compiled without -g.
	Debug []byte

	// dec caches the predecoded direct-threaded instruction streams
	// (see decode.go). Decoding treats Code as immutable: mutating a
	// binary after its first execution is not supported.
	dec decCache
}

// Clone returns a copy of the binary sharing the code, function, and
// global tables but with a fresh decode cache. Use it instead of a value
// copy (which would share — or tear — the cache's sync state).
func (b *Binary) Clone() *Binary {
	return &Binary{Code: b.Code, Funcs: b.Funcs, Globals: b.Globals, Debug: b.Debug}
}

// FuncIndex returns the index of the named function, or -1.
func (b *Binary) FuncIndex(name string) int {
	for i := range b.Funcs {
		if b.Funcs[i].Name == name {
			return i
		}
	}
	return -1
}

// TextHash returns a hash of the semantic instruction stream — opcode,
// registers, immediates, and function/global tables, but no line numbers
// or owner tags. DebugTuner uses it to discard pass-disabled builds whose
// .text is identical to the reference build.
func (b *Binary) TextHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	for i := range b.Code {
		in := &b.Code[i]
		mix(uint64(in.Op) | uint64(in.Sub)<<8 |
			uint64(in.A)<<16 | uint64(in.B)<<24 |
			uint64(in.C)<<32 | uint64(in.D)<<40)
		mix(uint64(in.Imm))
	}
	for i := range b.Funcs {
		f := &b.Funcs[i]
		for _, c := range f.Name {
			mix(uint64(c))
		}
		mix(uint64(f.Start))
		mix(uint64(f.NumSlots))
	}
	for i := range b.Globals {
		g := &b.Globals[i]
		mix(uint64(g.Init))
		if g.IsArray {
			mix(1)
		}
	}
	return h
}

func (o Op) String() string {
	names := [...]string{
		"nop", "prolog", "const", "mov", "bin", "binimm", "neg", "not",
		"select", "loadslot", "storeslot", "loadparam", "gload", "gstore",
		"newarr", "aload", "astore", "len", "vload2", "vbin", "vstore2",
		"arg", "call", "ret", "jmp", "br", "print",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op%d", int(o))
}
