package evalcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOncePerKey(t *testing.T) {
	var c Cache[int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestDoDistinctKeys(t *testing.T) {
	var c Cache[string]
	a, _ := c.Do("a", func() (string, error) { return "va", nil })
	b, _ := c.Do("b", func() (string, error) { return "vb", nil })
	if a != "va" || b != "vb" {
		t.Fatalf("got (%q, %q)", a, b)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestDoCachesErrors(t *testing.T) {
	var c Cache[int]
	sentinel := errors.New("measurement failed")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Do("bad", func() (int, error) {
			calls++
			return 0, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed compute retried %d times, want 1", calls)
	}
}

type evictErr struct{ msg string }

func (e *evictErr) Error() string     { return e.msg }
func (e *evictErr) Uncacheable() bool { return true }

func TestDoEvictsUncacheableErrors(t *testing.T) {
	var c Cache[int]
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do("quarantined", func() (int, error) {
			calls++
			return 0, &evictErr{msg: "cell quarantined"}
		})
		var u interface{ Uncacheable() bool }
		if !errors.As(err, &u) {
			t.Fatalf("err = %v, want uncacheable", err)
		}
	}
	if calls != 2 {
		t.Fatalf("uncacheable failure memoized: %d calls, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("evicted entry still resident: Len = %d", c.Len())
	}
	// A later success on the same key is cached normally.
	v, err := c.Do("quarantined", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	v, err = c.Do("quarantined", func() (int, error) {
		t.Error("successful result recomputed")
		return 0, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}
