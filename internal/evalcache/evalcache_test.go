package evalcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOncePerKey(t *testing.T) {
	var c Cache[int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestDoDistinctKeys(t *testing.T) {
	var c Cache[string]
	a, _ := c.Do("a", func() (string, error) { return "va", nil })
	b, _ := c.Do("b", func() (string, error) { return "vb", nil })
	if a != "va" || b != "vb" {
		t.Fatalf("got (%q, %q)", a, b)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestDoCachesErrors(t *testing.T) {
	var c Cache[int]
	sentinel := errors.New("measurement failed")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Do("bad", func() (int, error) {
			calls++
			return 0, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed compute retried %d times, want 1", calls)
	}
}
