// Disk is the persistent level of the evaluation cache: a
// content-addressed store of JSON-encoded measurement results under a
// cache directory (default ~/.cache/debugtuner, overridable). The VM is
// cycle-exact and builds are deterministic, so a result keyed by
// (tool identity × store format × subject source hash × config
// fingerprint) is valid for as long as the key matches — across
// processes and machine reboots.
//
// Robustness contract: the store is best-effort and self-healing. A
// torn, truncated, or otherwise corrupt entry is detected (envelope
// parse, format version, key echo, value checksum), deleted, and
// reported as a miss — the caller recomputes and rewrites it. Writes go
// through a temp file plus atomic rename, so two processes sharing one
// directory never observe partial entries.
package evalcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"debugtuner/internal/telemetry"
)

// diskFormatVersion is the on-disk envelope format. Bump it whenever
// the envelope or value encoding changes shape; old entries then read
// as misses and are rewritten, never misparsed.
const diskFormatVersion = 1

// envelope is one stored entry. Key is echoed to defend against
// filename collisions, and Sum guards the value bytes against torn
// concurrent writes that survive the rename discipline (e.g. a partial
// copy restored from backup).
type envelope struct {
	Version int             `json:"v"`
	Tool    string          `json:"tool"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Value   json.RawMessage `json:"val"`
}

// Disk is a handle on one cache directory. The zero value is not
// usable; OpenDisk validates the directory. A nil *Disk is a valid
// always-miss store, so callers can thread an optional cache without
// nil checks.
type Disk struct {
	dir string
	// tool identifies the producing binary (hash of the executable).
	// Results depend on the whole toolchain — a pass-pipeline change
	// alters measurements without changing any fingerprint — so entries
	// written by a different build of the tool must read as misses.
	tool string
}

// OpenDisk opens (creating if needed) a cache directory. An empty dir
// selects the default: $DEBUGTUNER_CACHE_DIR, else ~/.cache/debugtuner
// (via os.UserCacheDir).
func OpenDisk(dir string) (*Disk, error) {
	if dir == "" {
		dir = os.Getenv("DEBUGTUNER_CACHE_DIR")
	}
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			return nil, fmt.Errorf("evalcache: no cache dir: %w", err)
		}
		dir = filepath.Join(base, "debugtuner")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("evalcache: %w", err)
	}
	return &Disk{dir: dir, tool: toolID()}, nil
}

// Dir returns the store's directory.
func (d *Disk) Dir() string {
	if d == nil {
		return ""
	}
	return d.dir
}

// toolIDCache memoizes the executable hash (it cannot change mid-run).
var toolIDCache atomic.Pointer[string]

// toolID hashes the running executable. Any rebuild of the tool — new
// passes, new cost model, new store semantics — yields a new ID and
// therefore a cold cache, which is the only safe default.
func toolID() string {
	if p := toolIDCache.Load(); p != nil {
		return *p
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = hex.EncodeToString(h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	toolIDCache.Store(&id)
	return id
}

// entryPath maps a key to its file: two-level fan-out on the key hash
// keeps directory sizes bounded.
func (d *Disk) entryPath(key string) string {
	sum := sha256.Sum256([]byte(d.tool + "|" + key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(d.dir, name[:2], name[2:34]+".json")
}

// valueSum checksums the value bytes (FNV-1a 64).
func valueSum(b []byte) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}

// Get loads the entry for key into out (a JSON-decodable pointer) and
// reports whether a valid entry was found. Corrupt or mismatched
// entries are deleted and reported as misses.
func (d *Disk) Get(key string, out any) bool {
	if d == nil {
		return false
	}
	path := d.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		telemetry.Add("diskcache.miss", 1)
		return false
	}
	var env envelope
	ok := json.Unmarshal(raw, &env) == nil &&
		env.Version == diskFormatVersion &&
		env.Tool == d.tool &&
		env.Key == key &&
		env.Sum == valueSum(env.Value) &&
		json.Unmarshal(env.Value, out) == nil
	if !ok {
		// Self-heal: a corrupt entry would otherwise miss forever while
		// blocking the slot's rewrite path on some filesystems.
		os.Remove(path)
		telemetry.Add("diskcache.corrupt", 1)
		return false
	}
	telemetry.Add("diskcache.hit", 1)
	return true
}

// Put stores the value for key. Best-effort: failures are counted, not
// returned — the cache never turns a successful measurement into an
// error.
func (d *Disk) Put(key string, val any) {
	if d == nil {
		return
	}
	vb, err := json.Marshal(val)
	if err != nil {
		telemetry.Add("diskcache.write_err", 1)
		return
	}
	env := envelope{
		Version: diskFormatVersion,
		Tool:    d.tool,
		Key:     key,
		Sum:     valueSum(vb),
		Value:   vb,
	}
	eb, err := json.Marshal(&env)
	if err != nil {
		telemetry.Add("diskcache.write_err", 1)
		return
	}
	path := d.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		telemetry.Add("diskcache.write_err", 1)
		return
	}
	// Temp file in the destination directory plus rename: readers see
	// the old entry or the new one, never a prefix.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		telemetry.Add("diskcache.write_err", 1)
		return
	}
	_, werr := tmp.Write(eb)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
		telemetry.Add("diskcache.write_err", 1)
		return
	}
	telemetry.Add("diskcache.write", 1)
}

// defaultDisk is the process-wide store bound by SetDefaultDisk
// (normally from the -cachedir flag) and consumed by the measurement
// layers (tuner, specsuite) when they construct their caches.
var defaultDisk atomic.Pointer[Disk]

// SetDefaultDisk installs the process-wide persistent store (nil
// disables persistence).
func SetDefaultDisk(d *Disk) { defaultDisk.Store(d) }

// DefaultDisk returns the process-wide persistent store, or nil.
func DefaultDisk() *Disk { return defaultDisk.Load() }
