// Package evalcache is the content-addressed result cache of the
// evaluation engine. Keys are configuration fingerprints (see
// pipeline.Config.Fingerprint) scoped by subject name; values are the
// expensive measurement products — a build's TextHash and hybrid scores
// in the tuner, ref-workload cycle counts in specsuite — so table
// generators that revisit the same Ox-dy configuration (Fig2, Tables
// VIII–X) reuse one build+trace instead of redoing it.
//
// Do has singleflight semantics: concurrent workers asking for the same
// key block on a single computation instead of duplicating it, which is
// what makes the cache composable with the worker pool. The key space
// is sharded 64 ways so parallel workers touching different keys do not
// serialize on one mutex; per-shard contention is counted and surfaced
// through telemetry (evalcache.contended, evalcache.shardNN.contended).
//
// A cache can additionally be bound to an on-disk store (see Disk) that
// persists successful results across processes, making warm reruns skip
// the build+trace entirely.
package evalcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"debugtuner/internal/telemetry"
)

type entry[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

// numShards is the shard count of the key space. 64 keeps the worst
// observed lock hold (a map grow) off the other 63 lanes while staying
// small enough that Len/Contended stay cheap to aggregate.
const numShards = 64

type shard[V any] struct {
	mu sync.Mutex
	m  map[string]*entry[V]
	// contended counts lock acquisitions that found the shard lock
	// held — the signal the sharding exists to minimize.
	contended atomic.Int64
}

// lock acquires the shard lock, counting contended acquisitions.
func (s *shard[V]) lock(idx int) {
	if s.mu.TryLock() {
		return
	}
	s.contended.Add(1)
	if snk := telemetry.Active(); snk != nil {
		snk.Add("evalcache.contended", 1)
		snk.Add(fmt.Sprintf("evalcache.shard%02d.contended", idx), 1)
	}
	s.mu.Lock()
}

// Cache memoizes keyed computations. The zero value is ready to use.
type Cache[V any] struct {
	shards [numShards]shard[V]
	// disk, when set, is the persistent second level consulted on a
	// memory miss and written through on successful computes.
	disk atomic.Pointer[diskBinding]
}

// diskBinding scopes a cache's disk traffic: the namespace prefixes
// every key so distinct caches sharing one store cannot collide.
type diskBinding struct {
	d         *Disk
	namespace string
}

// SetDisk binds the cache to a persistent store. Keys are stored under
// the namespace (which must capture everything the in-memory key does
// not — subject identity, source hash), so the disk entry is valid
// exactly when an equal-keyed recompute would produce the same value.
// V must round-trip through encoding/json. A nil Disk detaches.
func (c *Cache[V]) SetDisk(d *Disk, namespace string) {
	if d == nil {
		c.disk.Store(nil)
		return
	}
	c.disk.Store(&diskBinding{d: d, namespace: namespace})
}

// shardFor hashes the key onto a shard (FNV-1a).
func shardFor(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % numShards)
}

// uncacheable matches errors that must not be memoized. The resilience
// layer's CellError implements it: a quarantined cell's failure may be
// environmental, and pinning it in the cache would make a -resume run's
// retry return the stale failure instead of recomputing.
type uncacheable interface{ Uncacheable() bool }

// Do returns the cached value for key, computing it at most once across
// all goroutines. Errors are cached as well: the evaluation treats most
// measurement failures as deterministic, so retrying a failed key is
// not useful. The exception is errors marked Uncacheable() (quarantined
// cells) — those evict their entry so a later request recomputes.
//
// With a disk store attached, a memory miss consults the store before
// computing, and a successful compute is written through; errors never
// persist.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	idx := shardFor(key)
	s := &c.shards[idx]
	s.lock(idx)
	if s.m == nil {
		s.m = map[string]*entry[V]{}
	}
	e := s.m[key]
	hit := e != nil
	if e == nil {
		e = &entry[V]{}
		s.m[key] = e
	}
	s.mu.Unlock()
	if snk := telemetry.Active(); snk != nil {
		if hit {
			// A hit on an entry whose compute is still running is a
			// coalesced request: this caller blocks on the in-flight
			// computation rather than reusing a finished result.
			if e.done.Load() {
				snk.Add("evalcache.hit", 1)
			} else {
				snk.Add("evalcache.coalesced", 1)
			}
		} else {
			snk.Add("evalcache.miss", 1)
		}
	}
	e.once.Do(func() {
		if b := c.disk.Load(); b != nil {
			dk := b.namespace + "|" + key
			if b.d.Get(dk, &e.val) {
				e.done.Store(true)
				return
			}
			e.val, e.err = compute()
			if e.err == nil {
				b.d.Put(dk, e.val)
			}
			e.done.Store(true)
			return
		}
		e.val, e.err = compute()
		e.done.Store(true)
	})
	if e.err != nil {
		var u uncacheable
		if errors.As(e.err, &u) && u.Uncacheable() {
			s.lock(idx)
			// Guard against a racing request that already replaced the
			// entry: only evict the one we observed.
			if s.m[key] == e {
				delete(s.m, key)
			}
			s.mu.Unlock()
			telemetry.Add("evalcache.evicted", 1)
		}
	}
	return e.val, e.err
}

// Len reports how many keys have been requested (including in-flight
// ones), summed across all shards, for tests and cache-effectiveness
// accounting.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.lock(i)
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Contended reports how many lock acquisitions found a shard lock held,
// summed across shards — the residual serialization the sharding did
// not eliminate.
func (c *Cache[V]) Contended() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].contended.Load()
	}
	return n
}
