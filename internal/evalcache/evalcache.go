// Package evalcache is the content-addressed result cache of the
// evaluation engine. Keys are configuration fingerprints (see
// pipeline.Config.Fingerprint) scoped by subject name; values are the
// expensive measurement products — a build's TextHash and hybrid scores
// in the tuner, ref-workload cycle counts in specsuite — so table
// generators that revisit the same Ox-dy configuration (Fig2, Tables
// VIII–X) reuse one build+trace instead of redoing it.
//
// Do has singleflight semantics: concurrent workers asking for the same
// key block on a single computation instead of duplicating it, which is
// what makes the cache composable with the worker pool.
package evalcache

import (
	"errors"
	"sync"
	"sync/atomic"

	"debugtuner/internal/telemetry"
)

type entry[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

// Cache memoizes keyed computations. The zero value is ready to use.
type Cache[V any] struct {
	mu sync.Mutex
	m  map[string]*entry[V]
}

// uncacheable matches errors that must not be memoized. The resilience
// layer's CellError implements it: a quarantined cell's failure may be
// environmental, and pinning it in the cache would make a -resume run's
// retry return the stale failure instead of recomputing.
type uncacheable interface{ Uncacheable() bool }

// Do returns the cached value for key, computing it at most once across
// all goroutines. Errors are cached as well: the evaluation treats most
// measurement failures as deterministic, so retrying a failed key is
// not useful. The exception is errors marked Uncacheable() (quarantined
// cells) — those evict their entry so a later request recomputes.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]*entry[V]{}
	}
	e := c.m[key]
	hit := e != nil
	if e == nil {
		e = &entry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if snk := telemetry.Active(); snk != nil {
		if hit {
			// A hit on an entry whose compute is still running is a
			// coalesced request: this caller blocks on the in-flight
			// computation rather than reusing a finished result.
			if e.done.Load() {
				snk.Add("evalcache.hit", 1)
			} else {
				snk.Add("evalcache.coalesced", 1)
			}
		} else {
			snk.Add("evalcache.miss", 1)
		}
	}
	e.once.Do(func() {
		e.val, e.err = compute()
		e.done.Store(true)
	})
	if e.err != nil {
		var u uncacheable
		if errors.As(e.err, &u) && u.Uncacheable() {
			c.mu.Lock()
			// Guard against a racing request that already replaced the
			// entry: only evict the one we observed.
			if c.m[key] == e {
				delete(c.m, key)
			}
			c.mu.Unlock()
			telemetry.Add("evalcache.evicted", 1)
		}
	}
	return e.val, e.err
}

// Len reports how many keys have been requested (including in-flight
// ones), for tests and cache-effectiveness accounting.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
