package evalcache

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// diskEntryFiles lists the entry files currently in the store.
func diskEntryFiles(t *testing.T, d *Disk) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(d.Dir(), func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && strings.HasSuffix(path, ".json") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", d.Dir(), err)
	}
	return out
}

type diskVal struct {
	N int64
	S string
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := diskVal{N: 42, S: "x"}
	d.Put("k1", want)
	var got diskVal
	if !d.Get("k1", &got) {
		t.Fatal("Get(k1) missed after Put")
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	if d.Get("k2", &got) {
		t.Fatal("Get(k2) hit without a Put")
	}
}

func TestDiskNilIsAlwaysMiss(t *testing.T) {
	var d *Disk
	d.Put("k", diskVal{N: 1})
	var got diskVal
	if d.Get("k", &got) {
		t.Fatal("nil Disk reported a hit")
	}
	if d.Dir() != "" {
		t.Fatalf("nil Disk Dir() = %q, want empty", d.Dir())
	}
}

// TestDiskVersionMismatch proves a format bump reads as a recompute, not
// a misparse: the entry is rewritten, never trusted.
func TestDiskVersionMismatch(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", diskVal{N: 7})
	files := diskEntryFiles(t, d)
	if len(files) != 1 {
		t.Fatalf("entry files = %d, want 1", len(files))
	}
	// Rewrite the entry claiming a future format version.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	env.Version = diskFormatVersion + 1
	raw, err = json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var got diskVal
	if d.Get("k", &got) {
		t.Fatal("Get hit a future-version entry")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatal("mismatched-version entry was not self-healed (deleted)")
	}
	// The slot is reusable: a fresh Put hits again.
	d.Put("k", diskVal{N: 8})
	if !d.Get("k", &got) || got.N != 8 {
		t.Fatalf("rewrite after heal: got %+v, want N=8", got)
	}
}

// TestDiskCorruptEntries proves every corruption mode reads as a miss
// and deletes the bad file instead of crashing or returning junk.
func TestDiskCorruptEntries(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"empty":      func([]byte) []byte { return nil },
		"not-json":   func([]byte) []byte { return []byte("%%%") },
		"bad-sum":    func(b []byte) []byte { return []byte(strings.Replace(string(b), `"sum":"`, `"sum":"0`, 1)) },
		"wrong-key": func(b []byte) []byte {
			var env envelope
			if err := json.Unmarshal(b, &env); err != nil {
				return b
			}
			env.Key = "someone-else"
			out, _ := json.Marshal(&env)
			return out
		},
		"wrong-tool": func(b []byte) []byte {
			var env envelope
			if err := json.Unmarshal(b, &env); err != nil {
				return b
			}
			env.Tool = "0000000000000000"
			out, _ := json.Marshal(&env)
			return out
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			d, err := OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			d.Put("k", diskVal{N: 9, S: "payload"})
			files := diskEntryFiles(t, d)
			if len(files) != 1 {
				t.Fatalf("entry files = %d, want 1", len(files))
			}
			raw, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			var got diskVal
			if d.Get("k", &got) {
				t.Fatal("Get hit a corrupt entry")
			}
			if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
				t.Fatal("corrupt entry was not deleted")
			}
		})
	}
}

// TestCacheDiskWriteThrough proves the memory/disk composition: a cold
// cache computes and persists, a fresh cache (new process stand-in)
// reads the persisted value without computing, and errors never persist.
func TestCacheDiskWriteThrough(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c1 Cache[diskVal]
	c1.SetDisk(d, "ns")
	computes := 0
	v, err := c1.Do("k", func() (diskVal, error) {
		computes++
		return diskVal{N: 5}, nil
	})
	if err != nil || v.N != 5 || computes != 1 {
		t.Fatalf("cold compute: v=%+v err=%v computes=%d", v, err, computes)
	}

	var c2 Cache[diskVal]
	c2.SetDisk(d, "ns")
	v, err = c2.Do("k", func() (diskVal, error) {
		computes++
		return diskVal{N: -1}, nil
	})
	if err != nil || v.N != 5 {
		t.Fatalf("warm read: v=%+v err=%v", v, err)
	}
	if computes != 1 {
		t.Fatal("warm cache recomputed despite a valid disk entry")
	}

	// A different namespace must not see the entry.
	var c3 Cache[diskVal]
	c3.SetDisk(d, "other")
	v, _ = c3.Do("k", func() (diskVal, error) {
		return diskVal{N: 11}, nil
	})
	if v.N != 11 {
		t.Fatalf("namespace isolation: got %+v, want N=11", v)
	}

	// Errors are cached in memory but never written to disk.
	var c4 Cache[diskVal]
	c4.SetDisk(d, "errs")
	if _, err := c4.Do("bad", func() (diskVal, error) {
		return diskVal{}, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("error compute reported success")
	}
	var c5 Cache[diskVal]
	c5.SetDisk(d, "errs")
	v, err = c5.Do("bad", func() (diskVal, error) {
		return diskVal{N: 3}, nil
	})
	if err != nil || v.N != 3 {
		t.Fatalf("error must not persist: v=%+v err=%v", v, err)
	}
}

// TestDiskUnfingerprintableBypass pins the FDO-style contract: callers
// with no stable fingerprint never enter Cache.Do, so a cache bound to a
// store writes nothing for them. Modeled directly: only Do traffic can
// reach disk, so a store that stays empty after uncached work proves the
// bypass.
func TestDiskUnfingerprintableBypass(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var c Cache[diskVal]
	c.SetDisk(d, "ns")
	// The FDO path: measured directly, not routed through c.Do.
	uncachedMeasure := func() diskVal { return diskVal{N: 1} }
	_ = uncachedMeasure()
	if n := len(diskEntryFiles(t, d)); n != 0 {
		t.Fatalf("bypassed measurement left %d disk entries", n)
	}
}

// helperKey/helperDir drive TestDiskConcurrentProcesses' re-exec.
var (
	helperMode = flag.String("disk-helper", "", "internal: run as disk cache helper process")
	helperDir  = flag.String("disk-helper-dir", "", "internal: helper cache dir")
)

// TestHelperProcess is re-executed by TestDiskConcurrentProcesses as a
// separate OS process sharing the cache directory. It hammers the same
// key space with Put/Get and prints CORRUPT if any Get returns a
// mangled value.
func TestHelperProcess(t *testing.T) {
	if *helperMode == "" {
		t.Skip("not in helper mode")
	}
	d, err := OpenDisk(*helperDir)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		for k := 0; k < 8; k++ {
			key := fmt.Sprintf("shared-%d", k)
			want := diskVal{N: int64(k), S: strings.Repeat("v", 256+k)}
			d.Put(key, want)
			var got diskVal
			if d.Get(key, &got) && got != want {
				fmt.Println("CORRUPT", key)
				t.Fatalf("torn read: got %+v", got)
			}
		}
	}
	fmt.Println("HELPER_OK", *helperMode)
}

// TestDiskConcurrentProcesses runs two real OS processes against one
// cache directory; the rename discipline must keep every read either a
// miss or a complete, checksummed value.
func TestDiskConcurrentProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	outs := make([]string, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(exe,
				"-test.run", "TestHelperProcess", "-test.v",
				"-disk-helper", fmt.Sprintf("p%d", i),
				"-disk-helper-dir", dir)
			out, err := cmd.CombinedOutput()
			outs[i], errs[i] = string(out), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil || strings.Contains(outs[i], "CORRUPT") ||
			!strings.Contains(outs[i], "HELPER_OK") {
			t.Fatalf("helper %d failed: err=%v\n%s", i, errs[i], outs[i])
		}
	}
	// Both processes used the same executable, hence the same tool ID:
	// the survivors must all be readable now.
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		var got diskVal
		want := diskVal{N: int64(k), S: strings.Repeat("v", 256+k)}
		if !d.Get(fmt.Sprintf("shared-%d", k), &got) {
			t.Fatalf("shared-%d missing after both processes wrote it", k)
		}
		if got != want {
			t.Fatalf("shared-%d: got %+v", k, got)
		}
	}
}
