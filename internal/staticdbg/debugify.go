package staticdbg

import (
	"fmt"

	"debugtuner/internal/ast"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/ir"
	"debugtuner/internal/vm"
)

// Baseline records the metadata a module carried before optimization:
// the set of attributed source lines and the set of variable symbol IDs.
// Survival is always measured against a baseline, so preservation is a
// fraction of a known quantity — 100% by construction after Inject.
type Baseline struct {
	Lines map[int]bool
	Vars  map[int]bool
}

// Survival counts how much of a baseline is still present: distinct
// baseline lines attributed somewhere, and baseline variables that still
// have at least one live binding (IR) or readable location (binary).
type Survival struct {
	Lines, Vars int
}

// Total returns the baseline's own size — the denominator for
// preservation percentages.
func (bl *Baseline) Total() Survival {
	return Survival{Lines: len(bl.Lines), Vars: len(bl.Vars)}
}

// Capture records the real front-end metadata of a module as the
// baseline: every attributed instruction line, every dbg.value-bound
// variable, and every variable with a home slot or parameter location.
// Use this to run verify-each over genuine metadata; use Inject for the
// synthetic known-100% baseline.
func Capture(prog *ir.Program) *Baseline {
	bl := &Baseline{Lines: map[int]bool{}, Vars: map[int]bool{}}
	for _, f := range prog.Funcs {
		for _, sym := range f.SlotVars {
			if sym != nil {
				bl.Vars[sym.ID] = true
			}
		}
		for _, sym := range f.ParamVars {
			if sym != nil {
				bl.Vars[sym.ID] = true
			}
		}
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Line > 0 {
					bl.Lines[v.Line] = true
				}
				if v.Op == ir.OpDbgValue && v.Var != nil {
					bl.Vars[v.Var.ID] = true
				}
			}
		}
	}
	return bl
}

// Inject returns a debugified clone of the module: existing dbg.values
// are stripped, every remaining instruction gets a distinct synthetic
// line (1..N module-wide, with MaxLine set to N so ir.Verify bounds
// them), and every result-producing value gets a dbg.value binding it to
// a fresh synthetic variable appended to a copy of the symbol table.
// The input module is not modified. The returned baseline contains
// every synthetic line and variable — preservation starts at exactly
// 100%, independent of the front-end.
func Inject(prog *ir.Program) (*ir.Program, *Baseline) {
	np := prog.Clone()
	// The clone shares the symbol slice; copy before appending synthetic
	// symbols so the input module's table is untouched.
	syms := append([]*ast.Symbol{}, np.Symbols...)
	bl := &Baseline{Lines: map[int]bool{}, Vars: map[int]bool{}}
	line := 0
	for _, f := range np.Funcs {
		startLine := line + 1
		for _, b := range f.Blocks {
			keep := make([]*ir.Value, 0, len(b.Instrs))
			for _, v := range b.Instrs {
				if v.Op == ir.OpDbgValue {
					continue
				}
				line++
				v.Line = line
				bl.Lines[line] = true
				keep = append(keep, v)
			}
			b.Instrs = keep
		}
		f.StartLine = startLine
		mkdbg := func(b *ir.Block, v *ir.Value) *ir.Value {
			sym := &ast.Symbol{
				Name: fmt.Sprintf("dbg%d", len(syms)),
				Type: ast.TypeInt, Kind: ast.SymLocal,
				Func: f.Name, ID: len(syms),
			}
			syms = append(syms, sym)
			bl.Vars[sym.ID] = true
			d := f.NewValue(b, ir.OpDbgValue, 0, v)
			d.Var = sym
			return d
		}
		for _, b := range f.Blocks {
			out := make([]*ir.Value, 0, 2*len(b.Instrs))
			var phiDbgs []*ir.Value // deferred past the phi prefix
			for i, v := range b.Instrs {
				out = append(out, v)
				if v.Op == ir.OpPhi {
					phiDbgs = append(phiDbgs, mkdbg(b, v))
					if i+1 >= len(b.Instrs) || b.Instrs[i+1].Op != ir.OpPhi {
						out = append(out, phiDbgs...)
						phiDbgs = nil
					}
					continue
				}
				if v.Op.HasResult() {
					out = append(out, mkdbg(b, v))
				}
			}
			b.Instrs = out
		}
	}
	np.Symbols = syms
	np.MaxLine = line
	return np, bl
}

// MeasureIR counts baseline survival in an IR module: distinct baseline
// lines still attributed to some instruction, and baseline variables
// that still have a bound dbg.value or a home slot/parameter location
// (slot-resident variables stay locatable without markers, exactly as
// the emitter treats them).
func (bl *Baseline) MeasureIR(prog *ir.Program) Survival {
	var s Survival
	lines := make(map[int]bool, len(bl.Lines))
	vars := make(map[int]bool, len(bl.Vars))
	for _, f := range prog.Funcs {
		for _, sym := range f.SlotVars {
			if sym != nil && bl.Vars[sym.ID] {
				vars[sym.ID] = true
			}
		}
		for _, sym := range f.ParamVars {
			if sym != nil && bl.Vars[sym.ID] {
				vars[sym.ID] = true
			}
		}
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Line > 0 && bl.Lines[v.Line] {
					lines[v.Line] = true
				}
				if v.Op == ir.OpDbgValue && v.Var != nil &&
					len(v.Args) == 1 && bl.Vars[v.Var.ID] {
					vars[v.Var.ID] = true
				}
			}
		}
	}
	s.Lines, s.Vars = len(lines), len(vars)
	return s
}

// MeasureBinary counts baseline survival in a compiled binary's debug
// section: distinct baseline lines present in the line table, and
// baseline variables with at least one readable (non-LocNone, nonzero
// length) location entry. An undecodable section counts as zero
// survival.
func (bl *Baseline) MeasureBinary(bin *vm.Binary) Survival {
	var s Survival
	if bin == nil || bin.Debug == nil {
		return s
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return s
	}
	lines := make(map[int]bool, len(bl.Lines))
	for _, e := range table.Lines {
		if e.Line > 0 && bl.Lines[int(e.Line)] {
			lines[int(e.Line)] = true
		}
	}
	vars := make(map[int]bool, len(bl.Vars))
	for i := range table.Vars {
		v := &table.Vars[i]
		if !bl.Vars[int(v.SymID)] || vars[int(v.SymID)] {
			continue
		}
		for _, e := range v.Entries {
			if e.Kind != debuginfo.LocNone && e.Start < e.End {
				vars[int(v.SymID)] = true
				break
			}
		}
	}
	s.Lines, s.Vars = len(lines), len(vars)
	return s
}
