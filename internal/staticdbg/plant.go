package staticdbg

import (
	"fmt"

	"debugtuner/internal/ast"
	"debugtuner/internal/ir"
)

// Plant seeds one deterministic violation of rule into the module, in
// place. It is the exported form of the seeded-violation recipes the
// analyzer tests use, for the hunt campaign's planted-bug drills: a
// known corruption injected after a chosen pass must be found by the
// analyzer, attributed to that pass, and survive reduction — an
// end-to-end self-test of the whole find/bucket/reduce machinery.
//
// Most recipes are IR-layer and codegen-neutral: the planted entity is
// a zero-argument dbg.value (codegen emits nothing for an unbound
// binding), so the corruption is visible to CheckModule at every
// subsequent step without perturbing the binary or seeding violations
// of other rules. RuleLocStale is the exception: a flow-sensitive,
// binary-level rule needs a recipe that survives codegen, so it plants
// a whole unreachable block whose register claim the verify-each
// mid-chain compile catches at the tamper step — before any later
// simplifycfg can sweep the block away. Unsupported rules return an
// error.
func Plant(prog *ir.Program, rule Rule) error {
	if !Plantable(rule) {
		return fmt.Errorf("staticdbg: no plant recipe for rule %s", rule)
	}
	var f *ir.Func
	for _, fn := range prog.Funcs {
		if len(fn.Blocks) > 0 {
			f = fn
			break
		}
	}
	if f == nil {
		return fmt.Errorf("staticdbg: plant %s: module has no function with blocks", rule)
	}
	b := f.Entry()
	switch rule {
	case RuleLineRange:
		// A negative line on the planted binding: flagged at every layer
		// pass over the module, removed by nothing (dbg.values carry no
		// dataflow for DCE to collect).
		d := f.NewValue(b, ir.OpDbgValue, -7)
		d.Var = tableSymbol(prog)
		b.Instrs = append([]*ir.Value{d}, b.Instrs...)
	case RuleScopeNesting:
		// A binding whose variable is not a member of the module symbol
		// table — the corruption inlining-style cloning bugs leave.
		d := f.NewValue(b, ir.OpDbgValue, 0)
		d.Var = &ast.Symbol{Name: "planted", Type: ast.TypeInt,
			Kind: ast.SymLocal, Func: f.Name, ID: 0}
		b.Instrs = append([]*ir.Value{d}, b.Instrs...)
	case RuleDbgOrphan:
		// A dangling reference: the bound value is allocated but never
		// placed in the function — what a DCE that forgets its dbg.value
		// users leaves behind.
		gone := f.NewValue(b, ir.OpConst, 0)
		d := f.NewValue(b, ir.OpDbgValue, 0, gone)
		d.Var = tableSymbol(prog)
		b.Instrs = append([]*ir.Value{d}, b.Instrs...)
	case RuleLocStale:
		// An orphan block computing a value and binding it to a fresh
		// variable: structurally valid IR (ir.Verify tolerates orphan
		// blocks — passes create them transiently), every line 0 so no
		// line rule fires, the Ret use keeping the computation alive
		// through DCE. Codegen lays the block out as an unreachable
		// straggler at the function end and dutifully opens a register
		// location entry at the binding, producing exactly the
		// wrong-value shape loc-stale exists for: a claim no execution
		// can ever materialize, here because no execution reaches it at
		// all. The fresh symbol keeps every other variable's claims
		// untouched.
		u := f.NewBlock()
		c := f.NewValue(u, ir.OpConst, 0)
		c.AuxInt = 7
		x := f.NewValue(u, ir.OpNeg, 0, c)
		d := f.NewValue(u, ir.OpDbgValue, 0, x)
		d.Var = freshSymbol(prog, f)
		r := f.NewValue(u, ir.OpRet, 0, x)
		u.Instrs = append(u.Instrs, c, x, d, r)
	}
	return nil
}

// Plantable reports whether Plant has a recipe for the rule, so
// campaign drivers can reject a bad drill spec at option-parse time.
func Plantable(rule Rule) bool {
	switch rule {
	case RuleLineRange, RuleScopeNesting, RuleDbgOrphan, RuleLocStale:
		return true
	}
	return false
}

// freshSymbol appends a new local symbol for the function to the module
// table, so the planted claim belongs to no real variable and seeds no
// scope-nesting violation.
func freshSymbol(prog *ir.Program, f *ir.Func) *ast.Symbol {
	sym := &ast.Symbol{Name: "planted", Type: ast.TypeInt,
		Kind: ast.SymLocal, Func: f.Name, ID: len(prog.Symbols)}
	prog.Symbols = append(prog.Symbols, sym)
	return sym
}

// tableSymbol returns a symbol-table member for a well-scoped planted
// binding, creating one when the module has no symbols at all.
func tableSymbol(prog *ir.Program) *ast.Symbol {
	for id, sym := range prog.Symbols {
		if sym != nil && sym.ID == id {
			return sym
		}
	}
	sym := &ast.Symbol{Name: "planted", Type: ast.TypeInt,
		Kind: ast.SymGlobal, ID: len(prog.Symbols)}
	prog.Symbols = append(prog.Symbols, sym)
	return sym
}
