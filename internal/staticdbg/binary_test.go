package staticdbg_test

import (
	"fmt"
	"testing"

	"debugtuner/internal/debuginfo"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/vm"
)

const binarySrc = `
func main(): int {
	var x: int = 3;
	var y: int = x * 2;
	print(x + y);
	return x + y;
}
`

// compileO0 compiles the fixture at gcc-O0: home slots for every local,
// a dense line table, and a clean debug section to corrupt from.
func compileO0(t testing.TB) *vm.Binary {
	t.Helper()
	info, err := pipeline.Frontend("t.mc", []byte(binarySrc))
	if err != nil {
		t.Fatal(err)
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := pipeline.NewConfig(pipeline.GCC, "O0")
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.Build(ir0, cfg)
}

// corrupt decodes the fixture's debug section, hands the table to the
// mutator, re-encodes it into a copy of the binary (the original may be
// cached by the pipeline and must stay pristine), and returns the copy.
func corrupt(t *testing.T, bin *vm.Binary, mutate func(*debuginfo.Table)) *vm.Binary {
	t.Helper()
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		t.Fatal(err)
	}
	mutate(table)
	nb := bin.Clone()
	nb.Debug = table.Encode()
	return nb
}

// wantViolation asserts the exact rendered diagnostic appears, and that
// every reported violation carries the expected rule.
func wantViolation(t *testing.T, vs []staticdbg.Violation, rule staticdbg.Rule, want string) {
	t.Helper()
	found := false
	for _, v := range vs {
		if v.String() == want {
			found = true
			if v.Rule != rule {
				t.Errorf("rule = %q, want %q", v.Rule, rule)
			}
		}
	}
	if !found {
		t.Fatalf("diagnostic %q not reported; got %v", want, staticdbg.Strings(vs))
	}
}

func TestCheckBinaryCleanFixture(t *testing.T) {
	bin := compileO0(t)
	if vs := staticdbg.CheckBinary(bin); len(vs) != 0 {
		t.Fatalf("clean binary flagged: %v", staticdbg.Strings(vs))
	}
}

func TestRuleSectionMissing(t *testing.T) {
	nb := *compileO0(t)
	nb.Debug = nil
	vs := staticdbg.CheckBinary(&nb)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	wantViolation(t, vs, staticdbg.RuleSection, "[section] module: binary has no debug section")
}

func TestRuleSectionUndecodable(t *testing.T) {
	nb := *compileO0(t)
	nb.Debug = []byte{0x01, 0x02, 0x03}
	vs := staticdbg.CheckBinary(&nb)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	wantViolation(t, vs, staticdbg.RuleSection,
		"[section] module: debug section does not decode: debuginfo: bad magic")
}

func TestRuleFuncRecordPrologueOutsideRange(t *testing.T) {
	bin := compileO0(t)
	var fd debuginfo.FuncDebug
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		tab.Funcs[0].PrologueEnd = tab.Funcs[0].End + 1
		fd = tab.Funcs[0]
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleFuncRecord,
		fmt.Sprintf("[func-record] %s: prologue end %d outside [%d,%d]",
			fd.Name, fd.PrologueEnd, fd.Start, fd.End))
}

func TestRuleFuncRecordDisagreesWithBinary(t *testing.T) {
	bin := compileO0(t)
	var fd debuginfo.FuncDebug
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		tab.Funcs[0].Start++ // shifted range, same name
		fd = tab.Funcs[0]
	})
	bf := &bin.Funcs[0]
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleFuncRecord,
		fmt.Sprintf("[func-record] %s: debug range [%d,%d) disagrees with binary %s [%d,%d)",
			fd.Name, fd.Start, fd.End, bf.Name, bf.Start, bf.End))
}

func TestRuleLineMonotone(t *testing.T) {
	bin := compileO0(t)
	var prev uint32
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		if len(tab.Lines) < 2 {
			t.Fatal("fixture has fewer than 2 line rows")
		}
		tab.Lines[1].Addr = tab.Lines[0].Addr
		prev = tab.Lines[0].Addr
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleLineMonotone,
		fmt.Sprintf("[line-monotone] module row 1: addr %d not strictly increasing (prev %d)",
			prev, prev))
}

func TestRuleLineContainmentOutsideCode(t *testing.T) {
	bin := compileO0(t)
	addr := uint32(len(bin.Code)) + 7
	var row int
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		row = len(tab.Lines) - 1
		tab.Lines[row].Addr = addr
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleLineContainment,
		fmt.Sprintf("[line-containment] module row %d: addr %d outside code (%d instructions)",
			row, addr, len(bin.Code)))
}

func TestRuleLineRangeNegativeRow(t *testing.T) {
	bin := compileO0(t)
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		tab.Lines[0].Line = -3
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleLineRange,
		"[line-range] module row 0: negative line -3")
}

// localVar returns the index of the first function-scoped variable.
func localVar(t *testing.T, tab *debuginfo.Table) int {
	t.Helper()
	for i := range tab.Vars {
		if tab.Vars[i].FuncIdx >= 0 {
			return i
		}
	}
	t.Fatal("fixture has no function-scoped variable")
	return -1
}

func TestRuleLocShapeInvertedRange(t *testing.T) {
	bin := compileO0(t)
	var fn, name string
	var s, e uint32
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		vi := localVar(t, tab)
		v := &tab.Vars[vi]
		fd := &tab.Funcs[v.FuncIdx]
		// Past every live entry so the only finding is the inversion.
		s, e = fd.End+9, fd.End+8
		v.Entries = append(v.Entries, debuginfo.LocEntry{Start: s, End: e, Kind: debuginfo.LocSlot})
		fn, name = fd.Name, v.Name
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleLocShape,
		fmt.Sprintf("[loc-shape] %s var %s: [%d,%d) slot: inverted range", fn, name, s, e))
}

func TestRuleLocContainment(t *testing.T) {
	bin := compileO0(t)
	var fn, name string
	var s, e, fs, fe uint32
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		vi := localVar(t, tab)
		v := &tab.Vars[vi]
		fd := &tab.Funcs[v.FuncIdx]
		s, e = fd.End, fd.End+1
		fs, fe = fd.Start, fd.End
		v.Entries = append(v.Entries, debuginfo.LocEntry{Start: s, End: e, Kind: debuginfo.LocNone})
		fn, name = fd.Name, v.Name
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleLocContainment,
		fmt.Sprintf("[loc-containment] %s var %s: [%d,%d) none: outside function bounds [%d,%d)",
			fn, name, s, e, fs, fe))
}

func TestRuleLocOverlap(t *testing.T) {
	bin := compileO0(t)
	var fn string
	var s uint32
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		fd := &tab.Funcs[0]
		s = fd.Start
		tab.Vars = append(tab.Vars, debuginfo.Variable{
			SymID: 77, Name: "ghost", FuncIdx: 0,
			Entries: []debuginfo.LocEntry{
				{Start: s, End: s + 2, Kind: debuginfo.LocNone},
				{Start: s + 1, End: s + 3, Kind: debuginfo.LocNone},
			},
		})
		fn = fd.Name
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleLocOverlap,
		fmt.Sprintf("[loc-overlap] %s var ghost: overlapping ranges [%d,%d) and [%d,%d)",
			fn, s, s+2, s+1, s+3))
}

func TestRuleLocWitnessUntaggedRegister(t *testing.T) {
	bin := compileO0(t)
	var fn string
	var s uint32
	nb := corrupt(t, bin, func(tab *debuginfo.Table) {
		fd := &tab.Funcs[0]
		s = fd.Start
		// A register claim no covering instruction ever asserts: the
		// malformed entry static coverage metrics over-count.
		tab.Vars = append(tab.Vars, debuginfo.Variable{
			SymID: 88, Name: "phantom", FuncIdx: 0,
			Entries: []debuginfo.LocEntry{
				{Start: s, End: s + 1, Kind: debuginfo.LocReg, Operand: 0},
			},
		})
		fn = fd.Name
	})
	wantViolation(t, staticdbg.CheckBinary(nb), staticdbg.RuleLocWitness,
		fmt.Sprintf("[loc-witness] %s var phantom: [%d,%d) reg: register never tagged for the variable by covering code",
			fn, s, s+1))
}
