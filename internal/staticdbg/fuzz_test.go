package staticdbg_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"debugtuner/internal/staticdbg"
)

// fuzzSeeds are the in-code seed inputs for FuzzCheckBinary, mirrored
// on disk under testdata/fuzz/FuzzCheckBinary (see
// TestWriteFuzzSeedCorpus for regeneration). They cover the decode
// error paths plus a valid section for the mutator to corrupt from.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	valid := append([]byte(nil), compileO0(tb).Debug...)
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	flipped := append([]byte(nil), valid...)
	if len(flipped) > 8 {
		flipped[8] ^= 0x40
	}
	return [][]byte{
		valid,
		truncated,
		flipped,
		{},
		[]byte("not a debug section"),
	}
}

// FuzzCheckBinary: the analyzer must never panic, whatever bytes sit in
// the debug section — mutated tables reach it through the hunt
// campaign and the difftest matrix, and a panic there would take down a
// whole campaign instead of producing a section finding.
func FuzzCheckBinary(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	bin := compileO0(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		nb := bin.Clone()
		nb.Debug = data
		_ = staticdbg.CheckBinary(nb)
		_ = staticdbg.DataflowVerdicts(nb)
	})
}

// TestWriteFuzzSeedCorpus regenerates the committed seed corpus when
// run with STATICDBG_WRITE_FUZZ_CORPUS=1; otherwise it verifies every
// in-code seed is present on disk, so the committed corpus cannot
// silently drift from the seeds the fuzz target actually uses.
func TestWriteFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckBinary")
	write := os.Getenv("STATICDBG_WRITE_FUZZ_CORPUS") == "1"
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range fuzzSeeds(t) {
		name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if write {
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("seed corpus missing (regenerate with STATICDBG_WRITE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != body {
			t.Errorf("%s drifted from the in-code seed", name)
		}
	}
}
