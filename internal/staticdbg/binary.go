package staticdbg

import (
	"fmt"
	"sort"

	"debugtuner/internal/debuginfo"
	"debugtuner/internal/vm"
)

// CheckBinary validates the structural invariants of a binary's debug
// section against the rule set (nil when clean):
//
//   - RuleSection: the section exists and decodes;
//   - RuleFuncRecord: function records agree with the binary's function
//     table (name, code range, prologue inside it);
//   - RuleLineMonotone / RuleLineContainment / RuleLineRange: the line
//     table is sorted with strictly increasing addresses, every row lies
//     inside the code, lines are non-negative, and every attributed row
//     (Line > 0, the is_stmt analog) falls inside a function's range;
//   - RuleLocShape / RuleLocContainment: location-list entries are
//     well-formed ranges (Start <= End) contained in their function's
//     bounds, with operands inside the machine (register < vm.NumRegs,
//     slot < frame size, global < global table);
//   - RuleLocOverlap: per variable, location ranges do not overlap — the
//     emitter closes an entry before opening the next, so an overlap is
//     two contradictory claims for one address;
//   - RuleLocWitness: every register and spill location of nonzero
//     length has an owner-tag witness in the covering code — some
//     covered instruction actually asserts "this register/slot now
//     holds this variable". A claim with no witness can never
//     materialize at runtime and is exactly the malformed entry static
//     metrics over-count. The check is syntactic — a witness anywhere
//     in the covering range is accepted even if a later clobber
//     invalidates it — which makes it the weak precursor of the
//     flow-sensitive RuleLocStale below;
//   - RuleLocStale / RuleLocExtendable / RuleLineUnreachable: the
//     dataflow-backed rules (see checkBinaryDataflow) — wrong-value
//     claims whose storage no reaching owner write can make observable,
//     advisory early-ended ranges the must-availability analysis can
//     prove extendable, and attributed line rows on statically
//     unreachable code.
func CheckBinary(bin *vm.Binary) []Violation {
	var out []Violation
	bad := func(rule Rule, fn, entity, format string, args ...any) {
		out = append(out, Violation{
			Rule: rule, Func: fn, Entity: entity,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if bin.Debug == nil {
		return []Violation{{Rule: RuleSection, Detail: "binary has no debug section"}}
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return []Violation{{Rule: RuleSection,
			Detail: "debug section does not decode: " + err.Error()}}
	}

	// Function records.
	if len(table.Funcs) != len(bin.Funcs) {
		bad(RuleFuncRecord, "", "func records",
			"debug has %d, binary has %d", len(table.Funcs), len(bin.Funcs))
	}
	for i := range table.Funcs {
		fd := &table.Funcs[i]
		if fd.Start > fd.End || int(fd.End) > len(bin.Code) {
			bad(RuleFuncRecord, fd.Name, "",
				"bad range [%d,%d) over %d instructions", fd.Start, fd.End, len(bin.Code))
			continue
		}
		if fd.PrologueEnd < fd.Start || fd.PrologueEnd > fd.End {
			bad(RuleFuncRecord, fd.Name, "",
				"prologue end %d outside [%d,%d]", fd.PrologueEnd, fd.Start, fd.End)
		}
		if i < len(bin.Funcs) {
			bf := &bin.Funcs[i]
			if fd.Name != bf.Name || int(fd.Start) != bf.Start || int(fd.End) != bf.End {
				bad(RuleFuncRecord, fd.Name, "",
					"debug range [%d,%d) disagrees with binary %s [%d,%d)",
					fd.Start, fd.End, bf.Name, bf.Start, bf.End)
			}
		}
	}

	// Line table.
	for i := range table.Lines {
		e := &table.Lines[i]
		row := fmt.Sprintf("row %d", i)
		if i > 0 && e.Addr <= table.Lines[i-1].Addr {
			bad(RuleLineMonotone, "", row,
				"addr %d not strictly increasing (prev %d)", e.Addr, table.Lines[i-1].Addr)
		}
		if int(e.Addr) >= len(bin.Code) && len(bin.Code) > 0 {
			bad(RuleLineContainment, "", row,
				"addr %d outside code (%d instructions)", e.Addr, len(bin.Code))
		}
		if e.Line < 0 {
			bad(RuleLineRange, "", row, "negative line %d", e.Line)
		}
		if e.Line > 0 && table.FuncForAddr(e.Addr) == nil {
			bad(RuleLineContainment, "", row,
				"(line %d) addr %d inside no function", e.Line, e.Addr)
		}
	}

	// Location lists.
	for vi := range table.Vars {
		v := &table.Vars[vi]
		ent := "var " + v.Name
		if v.FuncIdx == -1 {
			for _, e := range v.Entries {
				if e.Kind != debuginfo.LocGlobal {
					bad(RuleLocShape, "", "global "+v.Name,
						"non-global location kind %v", e.Kind)
					continue
				}
				if e.Operand < 0 || e.Operand >= int64(len(bin.Globals)) {
					bad(RuleLocShape, "", "global "+v.Name,
						"global index %d outside table of %d", e.Operand, len(bin.Globals))
				}
			}
			continue
		}
		if v.FuncIdx < 0 || int(v.FuncIdx) >= len(table.Funcs) {
			bad(RuleLocShape, "", ent,
				"function index %d outside %d records", v.FuncIdx, len(table.Funcs))
			continue
		}
		fd := &table.Funcs[v.FuncIdx]
		numSlots := 0
		if int(v.FuncIdx) < len(bin.Funcs) {
			numSlots = bin.Funcs[v.FuncIdx].NumSlots
		}
		for _, e := range v.Entries {
			where := fmt.Sprintf("[%d,%d) %v", e.Start, e.End, e.Kind)
			if e.Start > e.End {
				bad(RuleLocShape, fd.Name, ent, "%s: inverted range", where)
				continue
			}
			if e.Start < fd.Start || e.End > fd.End {
				bad(RuleLocContainment, fd.Name, ent,
					"%s: outside function bounds [%d,%d)", where, fd.Start, fd.End)
				continue
			}
			switch e.Kind {
			case debuginfo.LocReg:
				if e.Operand < 0 || e.Operand >= vm.NumRegs {
					bad(RuleLocShape, fd.Name, ent,
						"%s: register %d outside machine", where, e.Operand)
				} else if e.Start < e.End &&
					!tagWitness(bin, fd, e.End, v.SymID, int(e.Operand), -1) {
					bad(RuleLocWitness, fd.Name, ent,
						"%s: register never tagged for the variable by covering code", where)
				}
			case debuginfo.LocSpill:
				if e.Operand < 0 || e.Operand >= int64(numSlots) {
					bad(RuleLocShape, fd.Name, ent,
						"%s: spill slot %d outside frame of %d", where, e.Operand, numSlots)
				} else if e.Start < e.End &&
					!tagWitness(bin, fd, e.End, v.SymID, -1, int(e.Operand)) {
					bad(RuleLocWitness, fd.Name, ent,
						"%s: spill slot never tagged for the variable by covering code", where)
				}
			case debuginfo.LocSlot:
				if e.Operand < 0 || e.Operand >= int64(numSlots) {
					bad(RuleLocShape, fd.Name, ent,
						"%s: slot %d outside frame of %d", where, e.Operand, numSlots)
				}
			case debuginfo.LocNone, debuginfo.LocConst:
				// No operand constraints.
			default:
				bad(RuleLocShape, fd.Name, ent,
					"%s: invalid location kind for a local", where)
			}
		}
		// Non-overlap per variable.
		entries := append([]debuginfo.LocEntry(nil), v.Entries...)
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Start != entries[j].Start {
				return entries[i].Start < entries[j].Start
			}
			return entries[i].End < entries[j].End
		})
		for i := 1; i < len(entries); i++ {
			if entries[i].Start < entries[i-1].End {
				bad(RuleLocOverlap, fd.Name, ent,
					"overlapping ranges [%d,%d) and [%d,%d)",
					entries[i-1].Start, entries[i-1].End,
					entries[i].Start, entries[i].End)
			}
		}
	}

	// Flow-sensitive rules on top of the structurally valid remainder.
	df, _ := checkBinaryDataflow(bin, table)
	out = append(out, df...)
	return out
}

// tagWitness scans the function's code up to end for an owner tag
// binding the variable to the register (reg >= 0) or spill slot
// (slot >= 0). The emitter attaches the tag to the instruction just
// before the range opens (or as a pre-tag on the first covered one), so
// the scan starts at the function head rather than the range start.
func tagWitness(bin *vm.Binary, fd *debuginfo.FuncDebug, end uint32, symID int32, reg, slot int) bool {
	want := symID + 1
	for a := fd.Start; a < end && int(a) < len(bin.Code); a++ {
		for _, t := range bin.Code[a].Own {
			if t.Var != want {
				continue
			}
			if reg >= 0 && int(t.Reg) == reg {
				return true
			}
			if slot >= 0 && int(t.Slot) == slot {
				return true
			}
		}
	}
	return false
}
