package staticdbg_test

import (
	"fmt"
	"testing"

	"debugtuner/internal/dataflow"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/synth"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/vm"
)

// soundnessBudget caps each instrumented run: with a breakpoint on
// every address the observer fires per step, so the budget bounds the
// test's wall clock, not its verdict (budget exhaustion is fine — the
// claims below are per observed state, not about completing the run).
const soundnessBudget = 1 << 16

// soundnessSubject is one corpus member: an O0 IR module plus how to
// drive it (harness functions with a canned input, or the entry once).
type soundnessSubject struct {
	name      string
	ir0       *ir.Program
	entry     string
	harnesses []string
}

// soundnessCorpus is the full cross-check corpus: every test-suite
// program plus eight synthetic seeds.
func soundnessCorpus(t *testing.T) []soundnessSubject {
	t.Helper()
	var out []soundnessSubject
	for _, name := range testsuite.Names {
		s, err := testsuite.LoadLite(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		ir0, err := s.BuildIR()
		if err != nil {
			t.Fatalf("ir %s: %v", name, err)
		}
		out = append(out, soundnessSubject{
			name: name, ir0: ir0,
			entry:     s.Program.Entry,
			harnesses: s.Program.Info.Harnesses,
		})
	}
	for seed := int64(1); seed <= 8; seed++ {
		name := fmt.Sprintf("synth%d", seed)
		src := synth.Generate(seed, synth.DefaultOptions())
		info, err := pipeline.Frontend(name+".mc", []byte(src))
		if err != nil {
			t.Fatalf("frontend %s: %v", name, err)
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			t.Fatalf("ir %s: %v", name, err)
		}
		out = append(out, soundnessSubject{name: name, ir0: ir0, entry: "main"})
	}
	return out
}

// TestDataflowSoundnessOnCorpus is the dynamic lock on the owner
// analysis: over the whole corpus at O0/O2/O3 under both profiles, a
// breakpoint on every address observes the reference machine's
// ownership state and asserts, per stop:
//
//   - the observed owner of every register and slot is in the may-set
//     (the analysis never excludes a state that happens);
//   - a collapsed (singleton) may-set predicts the owner exactly — the
//     derived must-facts hold;
//   - MustPrologueDone implies the frame's prologue really ran;
//   - execution never reaches an address the CFG called unreachable;
//   - no value the analyzer ruled stale ever materializes at a covered
//     address, and every loc-extendable proof materializes at the
//     claimed range's end — the two soundness directions the new rules
//     stand on.
func TestDataflowSoundnessOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var configs []pipeline.Config
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		for _, level := range []string{"O0", "O2", "O3"} {
			configs = append(configs, pipeline.MustConfig(p, level))
		}
	}
	for _, sub := range soundnessCorpus(t) {
		for _, cfg := range configs {
			bin := pipeline.Build(sub.ir0, cfg)
			label := fmt.Sprintf("%s %s-%s", sub.name, cfg.Profile, cfg.Level)
			checkSoundness(t, label, bin, sub)
		}
	}
}

func checkSoundness(t *testing.T, label string, bin *vm.Binary, sub soundnessSubject) {
	t.Helper()
	verdicts := staticdbg.DataflowVerdicts(bin)
	byFunc := map[int][]staticdbg.LocVerdict{}
	for _, vd := range verdicts {
		byFunc[vd.FuncIdx] = append(byFunc[vd.FuncIdx], vd)
	}
	facts := map[int]*dataflow.OwnerFacts{}
	factsFor := func(fi int) *dataflow.OwnerFacts {
		if f, ok := facts[fi]; ok {
			return f
		}
		f := dataflow.NewOwnerFacts(bin, fi)
		facts[fi] = f
		return f
	}

	fails := 0
	bad := func(format string, args ...any) {
		if fails < 5 {
			t.Errorf("%s: %s", label, fmt.Sprintf(format, args...))
		}
		fails++
	}
	contains := func(xs []int32, x int32) bool {
		for _, v := range xs {
			if v == x {
				return true
			}
		}
		return false
	}

	observe := func(m *vm.Machine, addr int) {
		if fails >= 5 {
			return
		}
		fr := m.Frame()
		of := factsFor(fr.FnIdx)
		if !of.Reachable(addr) {
			bad("executed addr %d the analysis called unreachable (fn %d)", addr, fr.FnIdx)
			return
		}
		for r := 0; r < vm.NumRegs; r++ {
			owners := of.MayOwners(addr, dataflow.RegStorage(r))
			if !contains(owners, fr.Owner[r]) {
				bad("addr %d reg %d: observed owner %d outside may-set %v",
					addr, r, fr.Owner[r], owners)
			}
		}
		for sl := range fr.SlotOwn {
			owners := of.MayOwners(addr, dataflow.SlotStorage(sl))
			if !contains(owners, fr.SlotOwn[sl]) {
				bad("addr %d slot %d: observed owner %d outside may-set %v",
					addr, sl, fr.SlotOwn[sl], owners)
			}
		}
		if of.MustPrologueDone(addr) && !fr.PrologueDone {
			bad("addr %d: must-prologue-done but frame prologue not run", addr)
		}
		for _, vd := range byFunc[fr.FnIdx] {
			e := vd.Entry
			op := int(e.Operand)
			materializes := false
			switch e.Kind {
			case debuginfo.LocReg:
				materializes = op >= 0 && op < vm.NumRegs && fr.Owner[op] == vd.SymID+1
			case debuginfo.LocSpill:
				materializes = fr.PrologueDone && op >= 0 && op < len(fr.SlotOwn) &&
					fr.SlotOwn[op] == vd.SymID+1
			}
			if vd.Stale && addr >= int(e.Start) && addr < int(e.End) && materializes {
				bad("addr %d: stale verdict for sym %d %v materialized",
					addr, vd.SymID, e.Kind)
			}
			if !vd.Stale && addr == int(e.End) && !materializes {
				bad("addr %d: loc-extendable proof for sym %d %v does not materialize",
					addr, vd.SymID, e.Kind)
			}
		}
	}

	run := func(drive func(m *vm.Machine) error) {
		m := vm.New(bin)
		m.StepBudget = soundnessBudget
		m.Engine = vm.EngineReference
		for a := range bin.Code {
			m.SetBreak(a)
		}
		m.OnBreak = observe
		// Trap and budget errors are fine: the assertions above are per
		// observed machine state, not about the run completing.
		_ = drive(m)
	}
	if len(sub.harnesses) == 0 {
		run(func(m *vm.Machine) error {
			_, err := m.Call(sub.entry)
			return err
		})
		return
	}
	input := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	for _, h := range sub.harnesses {
		run(func(m *vm.Machine) error {
			hd := m.NewArray(input)
			_, err := m.Call(h, hd, int64(len(input)))
			return err
		})
	}
}
