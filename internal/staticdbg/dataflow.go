package staticdbg

import (
	"fmt"

	"debugtuner/internal/dataflow"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/vm"
)

// LocVerdict is the structured result behind a dataflow finding, kept
// separate from Violation so diagnostics can stay address-free (stable
// across the per-pass recompiles verify-each attribution diffs) while
// the soundness cross-check still knows exactly which addresses and
// storage each verdict constrains. DataflowVerdicts exposes them.
type LocVerdict struct {
	FuncIdx int
	SymID   int32
	Entry   debuginfo.LocEntry
	// Stale: no covered reachable address may observe the claimed
	// storage owned by the variable. Otherwise the verdict is the
	// loc-extendable proof at address Entry.End.
	Stale bool
}

// DataflowVerdicts decodes the binary's debug section and returns the
// flow-sensitive analysis's per-entry verdicts. It is the entry point
// of the dynamic soundness cross-check: a debugger trace must never
// materialize a value a Stale verdict constrains, and must always
// materialize an extendable verdict's value at its Entry.End.
func DataflowVerdicts(bin *vm.Binary) []LocVerdict {
	if bin.Debug == nil {
		return nil
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return nil
	}
	_, vds := checkBinaryDataflow(bin, table)
	return vds
}

// checkBinaryDataflow runs the flow-sensitive rule set — loc-stale,
// loc-extendable, line-unreachable — over an already structurally
// validated debug section. Entries that fail the structural rules
// (shape, containment) are skipped here: dataflow on top of malformed
// coordinates would only echo the structural finding as noise.
func checkBinaryDataflow(bin *vm.Binary, table *debuginfo.Table) ([]Violation, []LocVerdict) {
	var out []Violation
	var verdicts []LocVerdict
	facts := map[int]*dataflow.OwnerFacts{}
	factsFor := func(fi int) *dataflow.OwnerFacts {
		if f, ok := facts[fi]; ok {
			return f
		}
		f := dataflow.NewOwnerFacts(bin, fi)
		facts[fi] = f
		return f
	}
	fnOK := func(fi int32) bool {
		if fi < 0 || int(fi) >= len(table.Funcs) || int(fi) >= len(bin.Funcs) {
			return false
		}
		fd := &table.Funcs[fi]
		return fd.Start <= fd.End && int(fd.End) <= len(bin.Code)
	}

	// Location lists: loc-stale and loc-extendable.
	for vi := range table.Vars {
		v := &table.Vars[vi]
		if !fnOK(v.FuncIdx) {
			continue
		}
		fd := &table.Funcs[v.FuncIdx]
		numSlots := bin.Funcs[v.FuncIdx].NumSlots
		of := factsFor(int(v.FuncIdx))
		for _, e := range v.Entries {
			if e.Start >= e.End || e.Start < fd.Start || e.End > fd.End {
				continue
			}
			var st dataflow.Storage
			var kind string
			switch e.Kind {
			case debuginfo.LocReg:
				if e.Operand < 0 || e.Operand >= vm.NumRegs {
					continue
				}
				st, kind = dataflow.RegStorage(int(e.Operand)), "register"
			case debuginfo.LocSpill:
				if e.Operand < 0 || e.Operand >= int64(numSlots) {
					continue
				}
				st, kind = dataflow.SlotStorage(int(e.Operand)), "spill slot"
			default:
				continue
			}

			anyReach, observable := false, false
			for a := int(e.Start); a < int(e.End); a++ {
				if !of.Reachable(a) {
					continue
				}
				anyReach = true
				if of.MayOwn(a, st, v.SymID) || of.PreTagged(a, st, v.SymID) {
					observable = true
					break
				}
			}
			switch {
			case !anyReach:
				out = append(out, Violation{
					Rule: RuleLocStale, Func: fd.Name, Entity: "var " + v.Name,
					Detail: fmt.Sprintf(
						"%s claim covers only statically unreachable code", kind),
				})
				verdicts = append(verdicts, LocVerdict{
					FuncIdx: int(v.FuncIdx), SymID: v.SymID, Entry: e, Stale: true,
				})
			case !observable:
				out = append(out, Violation{
					Rule: RuleLocStale, Func: fd.Name, Entity: "var " + v.Name,
					Detail: fmt.Sprintf(
						"%s claim is stale: a clobbering write of a different owner reaches every covered address", kind),
				})
				verdicts = append(verdicts, LocVerdict{
					FuncIdx: int(v.FuncIdx), SymID: v.SymID, Entry: e, Stale: true,
				})
			default:
				// The claim can materialize; is it extendable past End?
				a := int(e.End)
				if a >= int(fd.End) || !of.Reachable(a) || v.LocAt(e.End) != nil {
					break
				}
				if !of.MustOwn(a, st, v.SymID) {
					break
				}
				if e.Kind == debuginfo.LocSpill && !of.MustPrologueDone(a) {
					break
				}
				out = append(out, Violation{
					Rule: RuleLocExtendable, Func: fd.Name, Entity: "var " + v.Name,
					Detail: fmt.Sprintf(
						"%s claim ends early: the value provably survives past the claimed range end", kind),
				})
				verdicts = append(verdicts, LocVerdict{
					FuncIdx: int(v.FuncIdx), SymID: v.SymID, Entry: e,
				})
			}
		}
	}

	// Line table: attributed rows on statically unreachable code.
	for i := range table.Lines {
		e := &table.Lines[i]
		if e.Line <= 0 {
			continue
		}
		for fi := range table.Funcs {
			fd := &table.Funcs[fi]
			if e.Addr < fd.Start || e.Addr >= fd.End || !fnOK(int32(fi)) {
				continue
			}
			if !factsFor(fi).Reachable(int(e.Addr)) {
				out = append(out, Violation{
					Rule: RuleLineUnreachable, Func: fd.Name,
					Entity: fmt.Sprintf("line %d", e.Line),
					Detail: "is_stmt row attributed to statically unreachable code",
				})
			}
			break
		}
	}
	return out, verdicts
}
