package staticdbg

import (
	"fmt"

	"debugtuner/internal/dataflow"
	"debugtuner/internal/ir"
)

// CheckModule runs the IR-level rule set over every function of the
// module and returns the violations found, in deterministic program
// order. It assumes the module already passes ir.Verify's structural
// checks (a structurally broken module may produce noise here); the
// verify-each driver runs both and reports both.
func CheckModule(prog *ir.Program) []Violation {
	var out []Violation
	for _, f := range prog.Funcs {
		out = append(out, checkFunc(prog, f)...)
	}
	return out
}

func checkFunc(prog *ir.Program, f *ir.Func) []Violation {
	var out []Violation
	bad := func(rule Rule, entity, format string, args ...any) {
		out = append(out, Violation{
			Rule: rule, Func: f.Name, Entity: entity,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Positions of every value for same-block dominance, plus the value
	// set for dangling-reference detection.
	pos := map[*ir.Value]int{}
	inFunc := map[*ir.Value]bool{}
	for _, b := range f.Blocks {
		for i, v := range b.Instrs {
			pos[v] = i
			inFunc[v] = true
		}
	}
	// Dominators and reachability are computed lazily: most modules have
	// few dbg.values relative to instructions, and unreachable blocks
	// (transient between a pass and the next cleanup) have no meaningful
	// dominance, so their bindings are skipped rather than misjudged.
	var idom map[*ir.Block]*ir.Block
	var reach map[*ir.Block]bool

	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Line < 0 {
				bad(RuleLineRange, v.String(), "negative line %d", v.Line)
			} else if prog.MaxLine > 0 && v.Line > prog.MaxLine {
				bad(RuleLineRange, v.String(),
					"line %d beyond source extent %d", v.Line, prog.MaxLine)
			}
			if v.Op != ir.OpDbgValue {
				continue
			}
			if v.Var == nil {
				bad(RuleDbgOrphan, v.String(), "dbg.value without a variable")
			} else if sid := v.Var.ID; sid < 0 || sid >= len(prog.Symbols) ||
				prog.Symbols[sid] != v.Var {
				bad(RuleScopeNesting, v.String(),
					"variable %s (sym %d) is not a member of the module symbol table",
					v.Var.Name, sid)
			}
			switch {
			case len(v.Args) > 1:
				bad(RuleDbgOrphan, v.String(),
					"dbg.value with %d args (want 0 or 1)", len(v.Args))
			case len(v.Args) == 1:
				a := v.Args[0]
				switch {
				case a == nil:
					bad(RuleDbgOrphan, v.String(), "dbg.value with nil bound value")
				case !inFunc[a]:
					bad(RuleDbgOrphan, v.String(),
						"dangling reference to %v (value no longer in %s)", a, f.Name)
				case !a.Op.HasResult():
					bad(RuleDbgOrphan, v.String(),
						"binds resultless %v (%v)", a, a.Op)
				default:
					if idom == nil {
						idom = ir.Dominators(f)
						reach = dataflow.ReachableBlocks(f)
					}
					if !reach[v.Block] || !reach[a.Block] {
						break // dominance is meaningless off the CFG
					}
					if a.Block == v.Block {
						if pos[a] > pos[v] {
							bad(RuleDbgDominance, v.String(),
								"bound value %v defined after its binding in %v", a, v.Block)
						}
					} else if !ir.Dominates(idom, a.Block, v.Block) {
						bad(RuleDbgDominance, v.String(),
							"bound value %v in %v does not dominate binding in %v",
							a, a.Block, v.Block)
					}
				}
			}
		}
	}
	return out
}
