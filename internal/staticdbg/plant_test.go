package staticdbg_test

import (
	"testing"

	"debugtuner/internal/codegen"
	"debugtuner/internal/ir"
	"debugtuner/internal/staticdbg"
)

// plantable is the rule set Plant supports; the hunt campaign's -plant
// flag accepts exactly these.
var plantable = []staticdbg.Rule{
	staticdbg.RuleLineRange, staticdbg.RuleScopeNesting, staticdbg.RuleDbgOrphan,
}

// TestPlantSeedsExactlyOneRule: each recipe turns a clean module into
// one flagged under exactly the requested rule.
func TestPlantSeedsExactlyOneRule(t *testing.T) {
	for _, rule := range plantable {
		prog, f, b, sym := newModule()
		c := f.NewValue(b, ir.OpConst, 1)
		d := f.NewValue(b, ir.OpDbgValue, 0, c)
		d.Var = sym
		ret := f.NewValue(b, ir.OpRet, 1, c)
		b.Instrs = append(b.Instrs, c, d, ret)
		if vs := staticdbg.CheckModule(prog); len(vs) != 0 {
			t.Fatalf("%s: substrate not clean: %v", rule, staticdbg.Strings(vs))
		}
		if err := staticdbg.Plant(prog, rule); err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		vs := staticdbg.CheckModule(prog)
		if len(vs) != 1 {
			t.Fatalf("%s: got %d violations %v, want 1", rule, len(vs), staticdbg.Strings(vs))
		}
		if vs[0].Rule != rule {
			t.Fatalf("planted %s, analyzer flagged %s", rule, vs[0].Rule)
		}
	}
}

// TestPlantDeterministic: two plants into identical modules yield the
// same rendered violation — bucket keys and witness diffs depend on it.
func TestPlantDeterministic(t *testing.T) {
	mk := func() *ir.Program {
		prog, f, b, sym := newModule()
		c := f.NewValue(b, ir.OpConst, 1)
		d := f.NewValue(b, ir.OpDbgValue, 0, c)
		d.Var = sym
		b.Instrs = append(b.Instrs, c, d)
		return prog
	}
	for _, rule := range plantable {
		a, b := mk(), mk()
		if err := staticdbg.Plant(a, rule); err != nil {
			t.Fatal(err)
		}
		if err := staticdbg.Plant(b, rule); err != nil {
			t.Fatal(err)
		}
		va, vb := staticdbg.Strings(staticdbg.CheckModule(a)), staticdbg.Strings(staticdbg.CheckModule(b))
		if len(va) != 1 || len(vb) != 1 || va[0] != vb[0] {
			t.Fatalf("%s: nondeterministic plant: %v vs %v", rule, va, vb)
		}
	}
}

// TestPlantUnsupportedRule: rules without a recipe error out instead of
// silently planting nothing.
func TestPlantUnsupportedRule(t *testing.T) {
	prog, _, _, _ := newModule()
	if err := staticdbg.Plant(prog, staticdbg.RuleLocOverlap); err == nil {
		t.Fatal("binary-layer rule accepted by Plant")
	}
}

// TestPlantLocStaleSurvivesCodegen: the loc-stale recipe is binary-level
// — the planted module stays structurally valid and CheckModule-clean,
// and only after codegen does the analyzer flag it, as exactly one
// loc-stale claim over the unreachable planted block.
func TestPlantLocStaleSurvivesCodegen(t *testing.T) {
	prog, f, b, sym := newModule()
	c := f.NewValue(b, ir.OpConst, 1)
	d := f.NewValue(b, ir.OpDbgValue, 0, c)
	d.Var = sym
	ret := f.NewValue(b, ir.OpRet, 1, c)
	b.Instrs = append(b.Instrs, c, d, ret)
	if err := staticdbg.Plant(prog, staticdbg.RuleLocStale); err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyProgram(prog); err != nil {
		t.Fatalf("planted module structurally invalid: %v", err)
	}
	if vs := staticdbg.CheckModule(prog); len(vs) != 0 {
		t.Fatalf("loc-stale plant visible at module layer: %v", staticdbg.Strings(vs))
	}
	bin := codegen.Compile(prog, codegen.Options{})
	vs := staticdbg.CheckBinary(bin)
	if len(vs) != 1 {
		t.Fatalf("got %d violations %v, want 1", len(vs), staticdbg.Strings(vs))
	}
	want := "[loc-stale] f var planted: register claim covers only statically unreachable code"
	if got := vs[0].String(); got != want {
		t.Errorf("diagnostic:\n got %q\nwant %q", got, want)
	}
}
