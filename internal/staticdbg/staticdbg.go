// Package staticdbg is the static debug-info verification subsystem: a
// debugify-style metadata injector and an invariant analyzer that check
// a module — and, post-codegen, the emitted debug section — against a
// typed rule set, so a pass corrupting or dropping debug metadata is
// caught at the moment it happens rather than downstream through
// dynamic traces or aggregate damage counters.
//
// It follows LLVM's debugify utility ("Who's Debugging the Debuggers?")
// and the static coverage bounds of Stinnett & Kell: inject synthetic,
// maximal metadata (every instruction a distinct line, every SSA value a
// variable), verify invariants after every transform, and attribute each
// loss to the pass that caused it. The package is deliberately
// dependency-light (ir, debuginfo, vm) so the pipeline, difftest, and
// the experiment harness can all share one checker and one report
// format.
package staticdbg

import (
	"fmt"
	"io"
	"sort"
)

// Rule identifies one invariant class. Every violation carries exactly
// one rule ID, so reports can be filtered, allowlisted, and asserted on
// by tests.
type Rule string

// The rule set. The first four apply to IR modules; the rest apply to
// the emitted debug section of a compiled binary. line-range applies at
// both layers (an IR instruction line and a line-table row are the same
// claim at different stages).
const (
	// RuleLineRange: a line is either a valid source line or the explicit
	// 0 sentinel — never negative, never beyond the source extent.
	RuleLineRange Rule = "line-range"
	// RuleDbgOrphan: a dbg.value is malformed or references a value that
	// no longer exists in its function (dangling after RAUW/DCE).
	RuleDbgOrphan Rule = "dbg-orphan"
	// RuleDbgDominance: a dbg.value's bound value must dominate the
	// binding site, or the binding describes a value that may not exist.
	RuleDbgDominance Rule = "dbg-dominance"
	// RuleScopeNesting: a dbg.value's variable must be a member of the
	// module symbol table (scope identity survives cloning and inlining).
	RuleScopeNesting Rule = "scope-nesting"
	// RuleSection: the binary's debug section is missing or undecodable.
	RuleSection Rule = "section"
	// RuleFuncRecord: a debug function record disagrees with the
	// binary's function table or describes an impossible range.
	RuleFuncRecord Rule = "func-record"
	// RuleLineMonotone: line-table rows must have strictly increasing
	// addresses.
	RuleLineMonotone Rule = "line-monotone"
	// RuleLineContainment: every row lies inside the code, and every
	// attributed row lies inside some function's range.
	RuleLineContainment Rule = "line-containment"
	// RuleLocShape: a location-list entry is structurally malformed —
	// inverted range, operand outside the machine/frame/global table, or
	// a kind invalid for its storage class.
	RuleLocShape Rule = "loc-shape"
	// RuleLocContainment: a location entry must lie inside its
	// function's code bounds.
	RuleLocContainment Rule = "loc-containment"
	// RuleLocOverlap: per variable, location ranges must not overlap —
	// two claims for one address contradict each other.
	RuleLocOverlap Rule = "loc-overlap"
	// RuleLocWitness: a register/spill claim of nonzero length needs an
	// owner-tag witness in the covering code; an unwitnessed claim can
	// never materialize at runtime (the static over-count pathology).
	//
	// This is the weak, purely syntactic precursor of RuleLocStale: it
	// accepts a witness anywhere in the covering range even when a later
	// clobber invalidates it, because it never asks whether the witness
	// still *reaches* the claimed addresses. A claim can carry a
	// perfectly good witness and still be wrong at every covered
	// address — that stronger, flow-sensitive judgment is loc-stale's.
	RuleLocWitness Rule = "loc-witness"
	// RuleLocStale: dataflow-backed wrong-value detection. A register or
	// spill location entry claims storage s for variable v, but the
	// owner reaching-definitions analysis shows no covered reachable
	// address where s may still hold v — either the range covers only
	// statically unreachable code, or a clobbering write of a different
	// owner reaches every covered address. Reading v there yields some
	// other value's bits: the wrong-value class dynamic debugger testing
	// finds at great cost, caught statically.
	RuleLocStale Rule = "loc-stale"
	// RuleLocExtendable (advisory): the must-availability analysis
	// proves v's value survives in its claimed storage past the entry's
	// end, yet no other entry covers the next address — recoverable
	// coverage the producer left on the table (Stinnett & Kell's
	// under-count dual). Advisory: the section is conservative, not
	// wrong, so clean-build gating and difftest ignore it.
	RuleLocExtendable Rule = "loc-extendable"
	// RuleLineUnreachable: a line-table row with source attribution
	// (Line > 0, the is_stmt analog) marks an address no path from its
	// function's entry can execute; a breakpoint there never fires and
	// inflates static line coverage.
	RuleLineUnreachable Rule = "line-unreachable"
)

// Rules lists every rule ID, in report order.
func Rules() []Rule {
	return []Rule{
		RuleLineRange, RuleDbgOrphan, RuleDbgDominance, RuleScopeNesting,
		RuleSection, RuleFuncRecord, RuleLineMonotone, RuleLineContainment,
		RuleLocShape, RuleLocContainment, RuleLocOverlap, RuleLocWitness,
		RuleLocStale, RuleLocExtendable, RuleLineUnreachable,
	}
}

// Advisory reports whether the rule flags a recommendation rather than
// a correctness violation. Advisory findings never gate clean builds:
// difftest, debugify PASS/FAIL, and verify-each attribution all filter
// them, leaving reports and scoreboards to surface them separately.
func (r Rule) Advisory() bool { return r == RuleLocExtendable }

// NonAdvisory filters out advisory findings, preserving order.
func NonAdvisory(vs []Violation) []Violation {
	out := make([]Violation, 0, len(vs))
	for _, v := range vs {
		if !v.Rule.Advisory() {
			out = append(out, v)
		}
	}
	return out
}

// Violation is one invariant failure: the rule, the function it occurred
// in ("" for module/section-level), the offending entity, and a
// human-readable detail.
type Violation struct {
	Rule   Rule
	Func   string
	Entity string
	Detail string
}

func (v Violation) String() string {
	site := v.Func
	if site == "" {
		site = "module"
	}
	if v.Entity != "" {
		site += " " + v.Entity
	}
	return fmt.Sprintf("[%s] %s: %s", v.Rule, site, v.Detail)
}

// Strings renders violations one line each, sorted and de-duplicated —
// the canonical stable order shared by every report.
func Strings(vs []Violation) []string {
	out := make([]string, 0, len(vs))
	seen := make(map[string]bool, len(vs))
	for _, v := range vs {
		s := v.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Render writes the sorted, de-duplicated violation report, one line
// each with the given prefix. This is the one formatter `experiments
// debugify`, `minicc -verify-each`, and difftest findings share; do not
// grow a second ad-hoc printer.
func Render(w io.Writer, prefix string, vs []Violation) {
	for _, s := range Strings(vs) {
		fmt.Fprintf(w, "%s%s\n", prefix, s)
	}
}
