package staticdbg_test

import (
	"testing"

	"debugtuner/internal/debuginfo"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/vm"
)

// handBin builds a one-function binary with the given code and debug
// table skeleton (function record filled in), for seeding dataflow-rule
// violations at exact addresses.
func handBin(code []vm.Instr, numSlots int, mutate func(tab *debuginfo.Table)) *vm.Binary {
	bin := &vm.Binary{
		Code: code,
		Funcs: []vm.FuncInfo{
			{Name: "f", Start: 0, End: len(code), NumSlots: numSlots},
		},
	}
	tab := &debuginfo.Table{
		Funcs: []debuginfo.FuncDebug{
			{Name: "f", Start: 0, End: uint32(len(code)), PrologueEnd: 1},
		},
	}
	mutate(tab)
	bin.Debug = tab.Encode()
	return bin
}

func ownReg(r int, symID int32) []vm.OwnerTag {
	return []vm.OwnerTag{{Reg: int8(r), Slot: -1, Var: symID + 1}}
}

// exactlyOne asserts the binary yields a single violation with the
// expected rule and rendered diagnostic.
func exactlyOne(t *testing.T, bin *vm.Binary, rule staticdbg.Rule, want string) staticdbg.Violation {
	t.Helper()
	vs := staticdbg.CheckBinary(bin)
	if len(vs) != 1 {
		t.Fatalf("got %d violations %v, want 1", len(vs), staticdbg.Strings(vs))
	}
	if vs[0].Rule != rule {
		t.Errorf("rule = %q, want %q", vs[0].Rule, rule)
	}
	if got := vs[0].String(); got != want {
		t.Errorf("diagnostic:\n got %q\nwant %q", got, want)
	}
	return vs[0]
}

// TestRuleLocStaleClobberedWitness is the loc-witness/loc-stale
// distinguishing case: the claimed range contains a genuine owner-tag
// witness, so the syntactic rule is satisfied — but the tag is a
// post-tag on the range's last covered instruction, so no covered stop
// ever observes the variable in the register (the preceding anonymous
// write reaches every covered address). Witness-present-but-stale must
// fire loc-stale only.
func TestRuleLocStaleClobberedWitness(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1, Imm: 5},                    // anonymous clobber of r1
		{Op: vm.OpConst, D: 1, Imm: 7, Own: ownReg(1, 0)}, // witness: post-tag r1 <- sym 0
		{Op: vm.OpRet, Sub: 1, A: 1},
	}
	bin := handBin(code, 0, func(tab *debuginfo.Table) {
		tab.Vars = []debuginfo.Variable{{
			SymID: 0, Name: "x", FuncIdx: 0,
			// Ends at 3: the post-tag's effect is first observable at
			// address 3, one past the claim.
			Entries: []debuginfo.LocEntry{
				{Start: 1, End: 3, Kind: debuginfo.LocReg, Operand: 1},
			},
		}}
	})
	v := exactlyOne(t, bin, staticdbg.RuleLocStale,
		"[loc-stale] f var x: register claim is stale: a clobbering write of a different owner reaches every covered address")
	if v.Rule.Advisory() {
		t.Error("loc-stale must not be advisory")
	}
}

// TestRuleLocStaleUnreachableClaim pins form A of the diagnostic: a
// claim whose every covered address is statically unreachable.
func TestRuleLocStaleUnreachableClaim(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1, Imm: 5},
		{Op: vm.OpRet, Sub: 1, A: 1},
		{Op: vm.OpConst, D: 2, Imm: 9, Own: ownReg(2, 0)}, // unreachable tail
		{Op: vm.OpRet, Sub: 1, A: 2},
	}
	bin := handBin(code, 0, func(tab *debuginfo.Table) {
		tab.Vars = []debuginfo.Variable{{
			SymID: 0, Name: "y", FuncIdx: 0,
			Entries: []debuginfo.LocEntry{
				{Start: 3, End: 5, Kind: debuginfo.LocReg, Operand: 2},
			},
		}}
	})
	exactlyOne(t, bin, staticdbg.RuleLocStale,
		"[loc-stale] f var y: register claim covers only statically unreachable code")
}

// TestRuleLocExtendable pins the advisory: the claim is observable, the
// value provably survives in the register past the claimed end, and no
// follow-up entry covers it — the recoverable coverage the
// must-availability analysis proves.
func TestRuleLocExtendable(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1, Imm: 5, Own: ownReg(1, 0)},
		{Op: vm.OpMov, D: 2, A: 1}, // r1 untouched: sym 0 survives
		{Op: vm.OpRet, Sub: 1, A: 1},
	}
	bin := handBin(code, 0, func(tab *debuginfo.Table) {
		tab.Vars = []debuginfo.Variable{{
			SymID: 0, Name: "x", FuncIdx: 0,
			Entries: []debuginfo.LocEntry{
				{Start: 2, End: 3, Kind: debuginfo.LocReg, Operand: 1},
			},
		}}
	})
	v := exactlyOne(t, bin, staticdbg.RuleLocExtendable,
		"[loc-extendable] f var x: register claim ends early: the value provably survives past the claimed range end")
	if !v.Rule.Advisory() {
		t.Error("loc-extendable must be advisory")
	}
	if left := staticdbg.NonAdvisory(staticdbg.CheckBinary(bin)); len(left) != 0 {
		t.Errorf("NonAdvisory kept the advisory: %v", staticdbg.Strings(left))
	}
}

// TestNegativeFuncIdxIsShapeFinding is the regression for a
// FuzzCheckBinary crasher: FuncIdx == -1 means global, but any other
// negative index used to reach table.Funcs[v.FuncIdx] and panic. It
// must be a loc-shape finding instead.
func TestNegativeFuncIdxIsShapeFinding(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpRet, Sub: 1, A: 0},
	}
	bin := handBin(code, 0, func(tab *debuginfo.Table) {
		tab.Vars = []debuginfo.Variable{{
			SymID: 0, Name: "x", FuncIdx: -25,
			Entries: []debuginfo.LocEntry{
				{Start: 0, End: 1, Kind: debuginfo.LocReg, Operand: 1},
			},
		}}
	})
	exactlyOne(t, bin, staticdbg.RuleLocShape,
		"[loc-shape] module var x: function index -25 outside 1 records")
}

// TestRuleLineUnreachable pins the diagnostic for an attributed line
// row on statically unreachable code.
func TestRuleLineUnreachable(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1, Imm: 5},
		{Op: vm.OpRet, Sub: 1, A: 1},
		{Op: vm.OpConst, D: 2, Imm: 9}, // unreachable tail
		{Op: vm.OpRet, Sub: 1, A: 2},
	}
	bin := handBin(code, 0, func(tab *debuginfo.Table) {
		tab.Lines = []debuginfo.LineEntry{
			{Addr: 1, Line: 4},
			{Addr: 3, Line: 9},
		}
	})
	exactlyOne(t, bin, staticdbg.RuleLineUnreachable,
		"[line-unreachable] f line 9: is_stmt row attributed to statically unreachable code")
}
