package staticdbg_test

import (
	"strings"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/staticdbg"
)

func buildIR(t *testing.T, src string) *ir.Program {
	t.Helper()
	info, err := pipeline.Frontend("t.mc", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		t.Fatal(err)
	}
	return ir0
}

func dump(prog *ir.Program) string {
	var sb strings.Builder
	for _, f := range prog.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

func TestInjectHundredPercentBaseline(t *testing.T) {
	ir0 := buildIR(t, binarySrc)
	inj, bl := staticdbg.Inject(ir0)
	total := bl.Total()
	if total.Lines == 0 || total.Vars == 0 {
		t.Fatalf("empty baseline: %+v", total)
	}
	if got := bl.MeasureIR(inj); got != total {
		t.Fatalf("fresh injection measures %+v, want the full baseline %+v", got, total)
	}
	if inj.MaxLine != total.Lines {
		t.Errorf("MaxLine = %d, want the synthetic line count %d", inj.MaxLine, total.Lines)
	}
	if err := ir.VerifyProgram(inj); err != nil {
		t.Errorf("injected module fails ir.Verify: %v", err)
	}
	if vs := staticdbg.CheckModule(inj); len(vs) != 0 {
		t.Errorf("injected module flagged: %v", staticdbg.Strings(vs))
	}
}

func TestInjectDistinctLinesAndVariables(t *testing.T) {
	ir0 := buildIR(t, binarySrc)
	inj, bl := staticdbg.Inject(ir0)
	lines := map[int]bool{}
	nonDbg := 0
	for _, f := range inj.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op == ir.OpDbgValue {
					continue
				}
				nonDbg++
				if v.Line <= 0 || lines[v.Line] {
					t.Fatalf("%s: %v line %d is zero or duplicated", f.Name, v, v.Line)
				}
				lines[v.Line] = true
			}
		}
	}
	if nonDbg != len(bl.Lines) {
		t.Errorf("baseline has %d lines for %d instructions", len(bl.Lines), nonDbg)
	}
	// Every result-producing value must carry a binding.
	for _, f := range inj.Funcs {
		for _, b := range f.Blocks {
			bound := map[*ir.Value]bool{}
			for _, v := range b.Instrs {
				if v.Op == ir.OpDbgValue && len(v.Args) == 1 {
					bound[v.Args[0]] = true
				}
			}
			for _, v := range b.Instrs {
				if v.Op != ir.OpDbgValue && v.Op.HasResult() && !bound[v] {
					t.Errorf("%s: %v (%v) has no synthetic binding", f.Name, v, v.Op)
				}
			}
		}
	}
}

func TestInjectLeavesInputUntouched(t *testing.T) {
	ir0 := buildIR(t, binarySrc)
	before := dump(ir0)
	nsyms := len(ir0.Symbols)
	staticdbg.Inject(ir0)
	if dump(ir0) != before {
		t.Fatal("Inject mutated its input module")
	}
	if len(ir0.Symbols) != nsyms {
		t.Fatalf("Inject grew the input symbol table %d -> %d", nsyms, len(ir0.Symbols))
	}
}

func TestInjectDeterministic(t *testing.T) {
	ir0 := buildIR(t, binarySrc)
	a, abl := staticdbg.Inject(ir0)
	b, bbl := staticdbg.Inject(ir0)
	if dump(a) != dump(b) {
		t.Fatal("two injections of the same module differ")
	}
	if abl.Total() != bbl.Total() {
		t.Fatalf("baselines differ: %+v vs %+v", abl.Total(), bbl.Total())
	}
}

func TestCaptureRealMetadata(t *testing.T) {
	ir0 := buildIR(t, binarySrc)
	bl := staticdbg.Capture(ir0)
	total := bl.Total()
	if total.Lines == 0 || total.Vars == 0 {
		t.Fatalf("capture found no metadata: %+v", total)
	}
	if got := bl.MeasureIR(ir0); got != total {
		t.Fatalf("unoptimized module measures %+v against its own baseline %+v", got, total)
	}
}

func TestMeasureBinarySurvivalAtO0(t *testing.T) {
	ir0 := buildIR(t, binarySrc)
	bl := staticdbg.Capture(ir0)
	bin := compileO0(t)
	surv := bl.MeasureBinary(bin)
	total := bl.Total()
	// O0 keeps every variable locatable in its home slot; lines survive
	// too (no pass runs to destroy them).
	if surv.Vars != total.Vars {
		t.Errorf("O0 variable survival %d/%d, want all", surv.Vars, total.Vars)
	}
	if surv.Lines == 0 || surv.Lines > total.Lines {
		t.Errorf("O0 line survival %d of %d out of range", surv.Lines, total.Lines)
	}
	// An undecodable section is zero survival, not an error.
	nb := bin.Clone()
	nb.Debug = []byte{9}
	if got := bl.MeasureBinary(nb); got != (staticdbg.Survival{}) {
		t.Errorf("undecodable section measures %+v, want zero", got)
	}
}
