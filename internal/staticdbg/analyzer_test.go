package staticdbg_test

import (
	"testing"

	"debugtuner/internal/ast"
	"debugtuner/internal/ir"
	"debugtuner/internal/staticdbg"
)

// newModule builds a one-function module with an empty entry block and
// one symbol-table variable, the minimal substrate for seeding one
// violation at a time.
func newModule() (*ir.Program, *ir.Func, *ir.Block, *ast.Symbol) {
	prog := &ir.Program{}
	f := &ir.Func{Name: "f", Prog: prog}
	prog.Funcs = append(prog.Funcs, f)
	b := f.NewBlock()
	sym := &ast.Symbol{Name: "x", Type: ast.TypeInt, Kind: ast.SymLocal, Func: "f", ID: 0}
	prog.Symbols = append(prog.Symbols, sym)
	return prog, f, b, sym
}

// one asserts the module yields exactly one violation with the expected
// rule and rendered diagnostic.
func one(t *testing.T, prog *ir.Program, rule staticdbg.Rule, want string) {
	t.Helper()
	vs := staticdbg.CheckModule(prog)
	if len(vs) != 1 {
		t.Fatalf("got %d violations %v, want 1", len(vs), staticdbg.Strings(vs))
	}
	if vs[0].Rule != rule {
		t.Errorf("rule = %q, want %q", vs[0].Rule, rule)
	}
	if got := vs[0].String(); got != want {
		t.Errorf("diagnostic:\n got %q\nwant %q", got, want)
	}
}

func TestCheckModuleCleanModule(t *testing.T) {
	prog, f, b, sym := newModule()
	c := f.NewValue(b, ir.OpConst, 1)
	d := f.NewValue(b, ir.OpDbgValue, 0, c)
	d.Var = sym
	ret := f.NewValue(b, ir.OpRet, 1, c)
	b.Instrs = append(b.Instrs, c, d, ret)
	if vs := staticdbg.CheckModule(prog); len(vs) != 0 {
		t.Fatalf("clean module flagged: %v", staticdbg.Strings(vs))
	}
}

func TestRuleLineRangeNegative(t *testing.T) {
	prog, f, b, _ := newModule()
	v := f.NewValue(b, ir.OpConst, -1)
	b.Instrs = append(b.Instrs, v)
	one(t, prog, staticdbg.RuleLineRange, "[line-range] f v0: negative line -1")
}

func TestRuleLineRangeBeyondExtent(t *testing.T) {
	prog, f, b, _ := newModule()
	prog.MaxLine = 3
	v := f.NewValue(b, ir.OpConst, 9)
	b.Instrs = append(b.Instrs, v)
	one(t, prog, staticdbg.RuleLineRange, "[line-range] f v0: line 9 beyond source extent 3")
}

func TestRuleDbgOrphanNoVariable(t *testing.T) {
	prog, f, b, _ := newModule()
	d := f.NewValue(b, ir.OpDbgValue, 0)
	b.Instrs = append(b.Instrs, d)
	one(t, prog, staticdbg.RuleDbgOrphan, "[dbg-orphan] f v0: dbg.value without a variable")
}

func TestRuleDbgOrphanTooManyArgs(t *testing.T) {
	prog, f, b, sym := newModule()
	c := f.NewValue(b, ir.OpConst, 1)
	c2 := f.NewValue(b, ir.OpConst, 1)
	d := f.NewValue(b, ir.OpDbgValue, 0, c, c2)
	d.Var = sym
	b.Instrs = append(b.Instrs, c, c2, d)
	one(t, prog, staticdbg.RuleDbgOrphan, "[dbg-orphan] f v2: dbg.value with 2 args (want 0 or 1)")
}

func TestRuleDbgOrphanDanglingReference(t *testing.T) {
	prog, f, b, sym := newModule()
	// The bound value is never placed in the function — exactly what a
	// DCE that forgets its dbg.value users leaves behind.
	gone := f.NewValue(b, ir.OpConst, 1)
	d := f.NewValue(b, ir.OpDbgValue, 0, gone)
	d.Var = sym
	b.Instrs = append(b.Instrs, d)
	one(t, prog, staticdbg.RuleDbgOrphan,
		"[dbg-orphan] f v1: dangling reference to v0 (value no longer in f)")
}

func TestRuleDbgOrphanResultlessBinding(t *testing.T) {
	prog, f, b, sym := newModule()
	c := f.NewValue(b, ir.OpConst, 1)
	p := f.NewValue(b, ir.OpPrint, 1, c)
	d := f.NewValue(b, ir.OpDbgValue, 0, p)
	d.Var = sym
	b.Instrs = append(b.Instrs, c, p, d)
	one(t, prog, staticdbg.RuleDbgOrphan, "[dbg-orphan] f v2: binds resultless v1 (print)")
}

func TestRuleDbgDominanceSameBlock(t *testing.T) {
	prog, f, b, sym := newModule()
	c := f.NewValue(b, ir.OpConst, 1)
	d := f.NewValue(b, ir.OpDbgValue, 0, c)
	d.Var = sym
	// The binding precedes the definition — a hoisted dbg.value.
	b.Instrs = append(b.Instrs, d, c)
	one(t, prog, staticdbg.RuleDbgDominance,
		"[dbg-dominance] f v1: bound value v0 defined after its binding in b0")
}

func TestRuleDbgDominanceCrossBlock(t *testing.T) {
	prog, f, entry, sym := newModule()
	left := f.NewBlock()
	right := f.NewBlock()
	cond := f.NewValue(entry, ir.OpParam, 1)
	br := f.NewValue(entry, ir.OpBr, 1, cond)
	entry.Instrs = append(entry.Instrs, cond, br)
	ir.AddEdge(entry, left)
	ir.AddEdge(entry, right)
	c := f.NewValue(left, ir.OpConst, 1)
	lr := f.NewValue(left, ir.OpRet, 1, c)
	left.Instrs = append(left.Instrs, c, lr)
	// right is not dominated by left, yet binds left's value.
	d := f.NewValue(right, ir.OpDbgValue, 0, c)
	d.Var = sym
	rr := f.NewValue(right, ir.OpRet, 1)
	right.Instrs = append(right.Instrs, d, rr)
	one(t, prog, staticdbg.RuleDbgDominance,
		"[dbg-dominance] f v4: bound value v2 in b1 does not dominate binding in b2")
}

func TestDominanceSkippedInUnreachableBlocks(t *testing.T) {
	prog, f, entry, sym := newModule()
	ret := f.NewValue(entry, ir.OpRet, 1)
	entry.Instrs = append(entry.Instrs, ret)
	// An orphan block (transient between a pass and the next cleanup):
	// dominance there is meaningless and must not be flagged.
	dead := f.NewBlock()
	c := f.NewValue(dead, ir.OpConst, 1)
	d := f.NewValue(dead, ir.OpDbgValue, 0, c)
	d.Var = sym
	dr := f.NewValue(dead, ir.OpRet, 1)
	dead.Instrs = append(dead.Instrs, d, c, dr)
	if vs := staticdbg.CheckModule(prog); len(vs) != 0 {
		t.Fatalf("unreachable block flagged: %v", staticdbg.Strings(vs))
	}
}

func TestRuleScopeNestingForeignSymbol(t *testing.T) {
	prog, f, b, _ := newModule()
	c := f.NewValue(b, ir.OpConst, 1)
	d := f.NewValue(b, ir.OpDbgValue, 0, c)
	// Same ID as the table's slot 0 but a different object: scope
	// identity is pointer identity, not ID equality.
	d.Var = &ast.Symbol{Name: "ghost", Type: ast.TypeInt, Kind: ast.SymLocal, Func: "f", ID: 0}
	b.Instrs = append(b.Instrs, c, d)
	one(t, prog, staticdbg.RuleScopeNesting,
		"[scope-nesting] f v1: variable ghost (sym 0) is not a member of the module symbol table")
}

func TestRulesListsEveryRuleOnce(t *testing.T) {
	rules := staticdbg.Rules()
	if len(rules) != 15 {
		t.Fatalf("Rules() lists %d rules, want 15", len(rules))
	}
	seen := map[staticdbg.Rule]bool{}
	for _, r := range rules {
		if seen[r] {
			t.Errorf("rule %q listed twice", r)
		}
		seen[r] = true
	}
}

func TestViolationStringModuleLevel(t *testing.T) {
	v := staticdbg.Violation{Rule: staticdbg.RuleSection, Detail: "binary has no debug section"}
	if got, want := v.String(), "[section] module: binary has no debug section"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
