package workerpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	SetWorkers(8)
	defer SetWorkers(0)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), items, func(_ context.Context, idx int, item int) (int, error) {
		if idx != item {
			t.Errorf("idx %d != item %d", idx, item)
		}
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	var cur, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(context.Background(), items, func(_ context.Context, _ int, _ int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestMapFirstErrorWinsAndCancels(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	items := make([]int, 32)
	var cancelled atomic.Bool
	_, err := Map(context.Background(), items, func(ctx context.Context, idx int, _ int) (int, error) {
		if idx == 3 {
			return 0, fmt.Errorf("boom at %d", idx)
		}
		if idx == 5 {
			// A later failure must not displace the earlier one.
			return 0, fmt.Errorf("boom at %d", idx)
		}
		select {
		case <-ctx.Done():
			cancelled.Store(true)
		case <-time.After(50 * time.Millisecond):
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if err.Error() != "boom at 3" {
		t.Fatalf("got %q, want the lowest-index error", err)
	}
	if !cancelled.Load() {
		t.Error("in-flight items never observed cancellation")
	}
}

func TestMapParentCancellation(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, make([]int, 8), func(context.Context, int, int) (int, error) {
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapSerialFallback(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	var mu sync.Mutex
	var order []int
	_, err := Map(context.Background(), []int{0, 1, 2, 3}, func(_ context.Context, idx int, _ int) (int, error) {
		mu.Lock()
		order = append(order, idx)
		mu.Unlock()
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial mode ran out of order: %v", order)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), nil, func(context.Context, int, int) error {
		t.Fatal("fn called on empty input")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkers(t *testing.T) {
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("auto Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(-3)
	if Workers() < 1 {
		t.Fatalf("negative SetWorkers broke auto mode: %d", Workers())
	}
}

func TestMapPanicCaptured(t *testing.T) {
	for _, n := range []int{1, 4} {
		SetWorkers(n)
		_, err := Map(context.Background(), []int{0, 1, 2, 3}, func(_ context.Context, idx int, _ int) (int, error) {
			if idx == 2 {
				panic("pass exploded")
			}
			return idx, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want *PanicError", n, err)
		}
		if pe.Index != 2 || fmt.Sprint(pe.Value) != "pass exploded" {
			t.Fatalf("workers=%d: PanicError = %+v", n, pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic stack not captured", n)
		}
		if !pe.Transient() {
			t.Fatalf("workers=%d: captured panics must classify transient", n)
		}
	}
	SetWorkers(0)
}

func TestMapTaskTimeout(t *testing.T) {
	SetTaskTimeout(10 * time.Millisecond)
	defer SetTaskTimeout(0)
	for _, n := range []int{1, 4} {
		SetWorkers(n)
		start := time.Now()
		_, err := Map(context.Background(), []int{0, 1}, func(ctx context.Context, idx int, _ int) (int, error) {
			if idx != 0 {
				return 0, nil
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: got %v, want DeadlineExceeded", n, err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("workers=%d: deadline enforcement took %v", n, el)
		}
	}
	SetWorkers(0)
}

func TestMapTaskTimeoutDisabledPassesCtxThrough(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	parent := context.Background()
	_, err := Map(parent, []int{0}, func(ctx context.Context, _ int, _ int) (int, error) {
		if ctx != parent {
			t.Error("serial path derived a context with no task timeout set")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapCancellationPromptNoLeak is the satellite coverage for parent
// cancellation: Map must return promptly once the parent context is
// cancelled mid-run, the serial and parallel paths must agree on the
// returned error, and no worker goroutine may outlive the call.
func TestMapCancellationPromptNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, n := range []int{1, 4} {
		SetWorkers(n)
		ctx, cancel := context.WithCancel(context.Background())
		items := make([]int, 256)
		var started atomic.Int64
		go func() {
			// Cancel once work is demonstrably in flight.
			for started.Load() == 0 {
				time.Sleep(time.Millisecond)
			}
			cancel()
		}()
		start := time.Now()
		_, err := Map(ctx, items, func(ctx context.Context, _ int, _ int) (int, error) {
			started.Add(1)
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Millisecond):
				return 0, nil
			}
		})
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", n, err)
		}
		// 256 items x 5ms would be ~1.3s serially; prompt cancellation
		// must come back far sooner.
		if elapsed > time.Second {
			t.Fatalf("workers=%d: cancellation took %v", n, elapsed)
		}
		cancel()
	}
	SetWorkers(0)
	// All worker goroutines must have exited by the time Map returned;
	// allow the count a moment to settle (the test's own cancel goroutine
	// and runtime housekeeping).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
