package workerpool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	SetWorkers(8)
	defer SetWorkers(0)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), items, func(_ context.Context, idx int, item int) (int, error) {
		if idx != item {
			t.Errorf("idx %d != item %d", idx, item)
		}
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	var cur, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(context.Background(), items, func(_ context.Context, _ int, _ int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestMapFirstErrorWinsAndCancels(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	items := make([]int, 32)
	var cancelled atomic.Bool
	_, err := Map(context.Background(), items, func(ctx context.Context, idx int, _ int) (int, error) {
		if idx == 3 {
			return 0, fmt.Errorf("boom at %d", idx)
		}
		if idx == 5 {
			// A later failure must not displace the earlier one.
			return 0, fmt.Errorf("boom at %d", idx)
		}
		select {
		case <-ctx.Done():
			cancelled.Store(true)
		case <-time.After(50 * time.Millisecond):
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if err.Error() != "boom at 3" {
		t.Fatalf("got %q, want the lowest-index error", err)
	}
	if !cancelled.Load() {
		t.Error("in-flight items never observed cancellation")
	}
}

func TestMapParentCancellation(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, make([]int, 8), func(context.Context, int, int) (int, error) {
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapSerialFallback(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	var mu sync.Mutex
	var order []int
	_, err := Map(context.Background(), []int{0, 1, 2, 3}, func(_ context.Context, idx int, _ int) (int, error) {
		mu.Lock()
		order = append(order, idx)
		mu.Unlock()
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial mode ran out of order: %v", order)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), nil, func(context.Context, int, int) error {
		t.Fatal("fn called on empty input")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkers(t *testing.T) {
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("auto Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(-3)
	if Workers() < 1 {
		t.Fatalf("negative SetWorkers broke auto mode: %d", Workers())
	}
}
