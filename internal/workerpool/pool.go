// Package workerpool is the bounded fan-out primitive shared by every
// parallel evaluation loop: the tuner's (program × pass) build matrix,
// the experiments table generators, specsuite.SuiteSpeedup, and
// testsuite.LoadAll.
//
// The design constraints come from DebugTuner's determinism requirement
// (§III rankings must not depend on scheduling): Map always returns
// results in input order, so callers aggregate exactly as the serial
// loops did, and the first error — by input index, not by completion
// time — cancels the pool and is the one returned.
package workerpool

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"debugtuner/internal/telemetry"
)

// workers holds the process-wide override set by the -j flag;
// 0 means "auto" (GOMAXPROCS).
var workers atomic.Int64

// SetWorkers fixes the process-wide worker count. n <= 0 restores the
// automatic default of runtime.GOMAXPROCS(0).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item on up to Workers() goroutines and returns
// the results in input order. The first failing item (lowest input
// index among observed failures) cancels the derived context passed to
// the remaining calls, and its error is returned. With one worker (or
// one item) Map degenerates to the exact serial loop.
func Map[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, idx int, item T) (R, error)) ([]R, error) {
	if len(items) == 0 {
		return nil, ctx.Err()
	}
	n := Workers()
	if n > len(items) {
		n = len(items)
	}
	results := make([]R, len(items))
	if n <= 1 {
		// Serial inline path: no goroutine, no derived context — fn
		// receives the caller's ctx unchanged and runs on the calling
		// goroutine, so single-worker runs are byte-for-byte the serial
		// loop (the determinism baseline -j1 is compared against).
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	pctx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		errMu   sync.Mutex
		errIdx  = -1
		poolErr error
		wg      sync.WaitGroup
	)
	snk := telemetry.Active()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var busy time.Duration
			if snk != nil {
				defer func() {
					snk.Add("workerpool.busy_ns", busy.Nanoseconds())
					snk.Add("workerpool.worker."+strconv.Itoa(worker)+".busy_ns",
						busy.Nanoseconds())
				}()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || ctx.Err() != nil {
					return
				}
				var t0 time.Time
				if snk != nil {
					// Remaining undispatched items approximate queue
					// depth at the moment this worker takes one.
					snk.Max("workerpool.queue", int64(len(items)-i))
					t0 = time.Now()
				}
				r, err := fn(ctx, i, items[i])
				if snk != nil {
					busy += time.Since(t0)
					snk.Add("workerpool.items", 1)
				}
				if err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, poolErr = i, err
					}
					errMu.Unlock()
					cancel()
					return
				}
				results[i] = r
			}
		}(w)
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, poolErr
	}
	if err := pctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map without per-item results.
func ForEach[T any](ctx context.Context, items []T, fn func(ctx context.Context, idx int, item T) error) error {
	_, err := Map(ctx, items, func(ctx context.Context, idx int, item T) (struct{}, error) {
		return struct{}{}, fn(ctx, idx, item)
	})
	return err
}
