// Package workerpool is the bounded fan-out primitive shared by every
// parallel evaluation loop: the tuner's (program × pass) build matrix,
// the experiments table generators, specsuite.SuiteSpeedup, and
// testsuite.LoadAll.
//
// The design constraints come from DebugTuner's determinism requirement
// (§III rankings must not depend on scheduling): Map always returns
// results in input order, so callers aggregate exactly as the serial
// loops did, and the first error — by input index, not by completion
// time — cancels the pool and is the one returned.
package workerpool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"debugtuner/internal/telemetry"
)

// workers holds the process-wide override set by the -j flag;
// 0 means "auto" (GOMAXPROCS).
var workers atomic.Int64

// SetWorkers fixes the process-wide worker count. n <= 0 restores the
// automatic default of runtime.GOMAXPROCS(0).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// taskTimeout holds the optional per-task deadline, in nanoseconds;
// 0 disables it.
var taskTimeout atomic.Int64

// SetTaskTimeout applies a deadline to every individual fn invocation:
// each task receives a context derived with WithTimeout(d). The deadline
// is advisory — a task that ignores its context runs to completion — but
// every evaluation loop in this repo threads ctx through to the VM and
// interpreter, which poll it. d <= 0 disables the deadline, restoring
// the exact pre-timeout contexts (including the serial path's pass-through
// of the caller's ctx).
func SetTaskTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	taskTimeout.Store(int64(d))
}

// TaskTimeout returns the per-task deadline, or 0 when disabled.
func TaskTimeout() time.Duration { return time.Duration(taskTimeout.Load()) }

// PanicError is a panic captured from one Map task. Before this type
// existed a panicking pass anywhere in the (program × config) matrix
// unwound through the pool and killed the whole run; now it cancels the
// pool like any other first error, carrying the task index and stack.
type PanicError struct {
	// Index is the input index of the panicking task.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d panicked: %v", e.Index, e.Value)
}

// Transient reports true: under the resilience layer's taxonomy a panic
// earns a retry (a deterministic one simply exhausts its retries into
// quarantine).
func (e *PanicError) Transient() bool { return true }

// call invokes fn on one item with the per-task deadline applied and
// panics converted to *PanicError. With no deadline configured, ctx is
// passed through untouched.
func call[T, R any](ctx context.Context, idx int, item T, fn func(ctx context.Context, idx int, item T) (R, error)) (r R, err error) {
	if d := TaskTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			telemetry.Add("workerpool.panics", 1)
			err = &PanicError{Index: idx, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, idx, item)
}

// Map applies fn to every item on up to Workers() goroutines and returns
// the results in input order. The first failing item (lowest input
// index among observed failures) cancels the derived context passed to
// the remaining calls, and its error is returned. With one worker (or
// one item) Map degenerates to the exact serial loop.
func Map[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, idx int, item T) (R, error)) ([]R, error) {
	if len(items) == 0 {
		return nil, ctx.Err()
	}
	n := Workers()
	if n > len(items) {
		n = len(items)
	}
	results := make([]R, len(items))
	if n <= 1 {
		// Serial inline path: no goroutine, and (absent a task timeout)
		// no derived context — fn receives the caller's ctx unchanged and
		// runs on the calling goroutine, so single-worker runs are
		// byte-for-byte the serial loop (the determinism baseline -j1 is
		// compared against).
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := call(ctx, i, item, fn)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	pctx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		errMu   sync.Mutex
		errIdx  = -1
		poolErr error
		wg      sync.WaitGroup
	)
	snk := telemetry.Active()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var busy time.Duration
			if snk != nil {
				defer func() {
					snk.Add("workerpool.busy_ns", busy.Nanoseconds())
					snk.Add("workerpool.worker."+strconv.Itoa(worker)+".busy_ns",
						busy.Nanoseconds())
				}()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || ctx.Err() != nil {
					return
				}
				var t0 time.Time
				if snk != nil {
					// Remaining undispatched items approximate queue
					// depth at the moment this worker takes one.
					snk.Max("workerpool.queue", int64(len(items)-i))
					t0 = time.Now()
				}
				r, err := call(ctx, i, items[i], fn)
				if snk != nil {
					busy += time.Since(t0)
					snk.Add("workerpool.items", 1)
				}
				if err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, poolErr = i, err
					}
					errMu.Unlock()
					cancel()
					return
				}
				results[i] = r
			}
		}(w)
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, poolErr
	}
	if err := pctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map without per-item results.
func ForEach[T any](ctx context.Context, items []T, fn func(ctx context.Context, idx int, item T) error) error {
	_, err := Map(ctx, items, func(ctx context.Context, idx int, item T) (struct{}, error) {
		return struct{}{}, fn(ctx, idx, item)
	})
	return err
}
