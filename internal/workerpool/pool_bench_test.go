package workerpool

import (
	"context"
	"testing"
	"time"
)

// spin is the CPU-bound mock evaluation cell: a fixed-iteration FNV
// accumulation the compiler cannot eliminate or hoist, standing in for
// one build+trace of the (program × pass) matrix. iters=20_000 is
// ~20–50µs per cell — big enough to dwarf dispatch overhead, small
// enough that scheduling effects (the thing the pool exists to manage)
// still register.
func spin(seed uint64, iters int) uint64 {
	h := seed
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < iters; i++ {
		h ^= uint64(i)
		h *= 1099511628211
	}
	return h
}

// spinSink prevents the whole benchmark loop from being eliminated.
var spinSink uint64

const (
	benchCells     = 256
	benchCellIters = 20_000
)

func benchItems() []uint64 {
	items := make([]uint64, benchCells)
	for i := range items {
		items[i] = uint64(i + 1)
	}
	return items
}

// serialThroughput runs the plain serial loop — the determinism
// baseline every -j1 run is compared against — and returns cells/sec.
func serialThroughput() float64 {
	items := benchItems()
	t0 := time.Now()
	var acc uint64
	for _, it := range items {
		acc ^= spin(it, benchCellIters)
	}
	spinSink = acc
	return float64(len(items)) / time.Since(t0).Seconds()
}

// mapThroughput runs the same cells through Map at the given worker
// count and returns cells/sec.
func mapThroughput(tb testing.TB, jobs int) float64 {
	items := benchItems()
	SetWorkers(jobs)
	defer SetWorkers(0)
	t0 := time.Now()
	res, err := Map(context.Background(), items,
		func(_ context.Context, _ int, it uint64) (uint64, error) {
			return spin(it, benchCellIters), nil
		})
	d := time.Since(t0)
	if err != nil {
		tb.Fatal(err)
	}
	var acc uint64
	for _, r := range res {
		acc ^= r
	}
	spinSink = acc
	return float64(len(items)) / d.Seconds()
}

// TestSerialParityAtJ1 is the -j regression gate: Map with one worker
// must deliver at least 0.95× the plain serial loop's throughput on
// CPU-bound cells. The -j1 path runs inline on the calling goroutine,
// so the only admissible overhead is one ctx.Err check and one call
// frame per cell. Best-of-5 on both sides deflakes scheduler noise.
func TestSerialParityAtJ1(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	best := func(f func() float64) float64 {
		var b float64
		for i := 0; i < 5; i++ {
			if v := f(); v > b {
				b = v
			}
		}
		return b
	}
	serial := best(serialThroughput)
	pooled := best(func() float64 { return mapThroughput(t, 1) })
	ratio := pooled / serial
	t.Logf("serial=%.0f cells/s, -j1=%.0f cells/s, ratio=%.3f", serial, pooled, ratio)
	if ratio < 0.95 {
		t.Fatalf("-j1 throughput is %.3f× serial, want >= 0.95×", ratio)
	}
}

// BenchmarkMapScaling measures pool throughput at increasing worker
// counts over CPU-bound mock cells. On a multi-core machine the -j2/-j4
// numbers should approach linear speedup; on a single-CPU machine they
// document (honestly) that extra workers cannot help.
func BenchmarkMapScaling(b *testing.B) {
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run("j"+string(rune('0'+jobs)), func(b *testing.B) {
			items := benchItems()
			SetWorkers(jobs)
			defer SetWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Map(context.Background(), items,
					func(_ context.Context, _ int, it uint64) (uint64, error) {
						return spin(it, benchCellIters), nil
					})
				if err != nil {
					b.Fatal(err)
				}
				spinSink ^= res[0]
			}
			cells := float64(b.N) * benchCells
			b.ReportMetric(cells/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkMapSerialBaseline is the no-pool reference for
// BenchmarkMapScaling/j1.
func BenchmarkMapSerialBaseline(b *testing.B) {
	items := benchItems()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var acc uint64
		for _, it := range items {
			acc ^= spin(it, benchCellIters)
		}
		spinSink = acc
	}
	cells := float64(b.N) * benchCells
	b.ReportMetric(cells/b.Elapsed().Seconds(), "cells/s")
}
