// Package testsuite assembles the debug-information test suite of §IV:
// thirteen real-world-shaped MiniC programs named after the paper's
// OSS-Fuzz subjects, each with one or more fuzzing harnesses, plus the
// corpus pipeline that grows, minimizes, and trace-prunes their inputs.
package testsuite

import (
	"context"
	"embed"
	"fmt"
	"sort"
	"sync"

	"debugtuner/internal/corpus"
	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/evalcache"
	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/suite"
	"debugtuner/internal/tuner"
	"debugtuner/internal/vm"
	"debugtuner/internal/workerpool"
)

//go:embed programs/*.mc
var programFS embed.FS

// Names lists the suite members in the paper's order.
var Names = []string{
	"bzip2", "libdwarf", "libexif", "liblouis", "libmpeg2", "libpcap",
	"libpng", "libssh", "libyaml", "lighttpd", "wasm3", "zlib", "zydis",
}

// Source returns a program's MiniC source.
func Source(name string) ([]byte, error) {
	return programFS.ReadFile("programs/" + name + ".mc")
}

// CorpusOptions tunes the input pipeline; zero values pick defaults
// scaled for test runs.
type CorpusOptions struct {
	// Execs per harness in the fuzzing phase.
	Execs int
	// StepBudget per execution.
	StepBudget int64
	// Seed offsets the per-harness PRNG seeds.
	Seed int64
}

// HarnessCorpus is the minimized input set of one harness.
type HarnessCorpus struct {
	Harness string
	// Queue is the full grown queue size (pre-minimization).
	Queue int
	// AfterCMin counts inputs after coverage-preserving minimization.
	AfterCMin int
	// Inputs is the final input set after debug-trace cover pruning.
	Inputs [][]int64
}

// Subject is one loaded suite member with its corpora. It implements
// suite.Debuggable: the Name/Source/BuildIR/Run methods shadow the
// promoted tuner.Program fields, so cross-suite consumers see the same
// surface a specsuite.Benchmark presents (the underlying fields remain
// reachable through Tuner()).
type Subject struct {
	*tuner.Program
	Corpora []HarnessCorpus
}

var _ suite.Debuggable = (*Subject)(nil)

// Name returns the subject's suite name.
func (s *Subject) Name() string { return s.Program.Name }

// Source returns the subject's MiniC source.
func (s *Subject) Source() ([]byte, error) { return Source(s.Program.Name) }

// BuildIR returns the subject's O0 IR (shared; callers must not mutate).
func (s *Subject) BuildIR() (*ir.Program, error) { return s.Program.IR0, nil }

// Tuner exposes the backing tuner program for metric evaluation.
func (s *Subject) Tuner() *tuner.Program { return s.Program }

// Run builds the subject under the configuration and executes its final
// corpus inputs on the plain VM (each input on a fresh machine, like the
// fuzzer), totalling cycles and steps; a subject with no harness inputs
// runs its entry function once.
func (s *Subject) Run(cfg pipeline.Config) (*suite.Result, error) {
	bin := s.Program.Build(cfg)
	res := &suite.Result{Name: s.Program.Name}
	ran := false
	for _, h := range s.Program.Info.Harnesses {
		for _, in := range s.Program.Inputs[h] {
			m := vm.New(bin)
			m.StepBudget = s.Program.Budget
			hd := m.NewArray(in)
			if _, err := m.Call(h, hd, int64(len(in))); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s.Program.Name, h, err)
			}
			res.Cycles += m.Cycles
			res.Steps += m.Steps
			res.Output = append(res.Output, m.Output()...)
			ran = true
		}
	}
	if !ran {
		m := vm.New(bin)
		m.StepBudget = s.Program.Budget
		if _, err := m.Call(s.Program.Entry); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", s.Program.Name, s.Program.Entry, err)
		}
		res.Cycles, res.Steps, res.Output = m.Cycles, m.Steps, m.Output()
	}
	return res, nil
}

// Stats reproduces the Table III row for the subject.
type Stats struct {
	Name string
	// AvgInputs is the per-harness average of the final input counts.
	AvgInputs float64
	// ReductionPct is the average queue-size reduction.
	ReductionPct float64
	// SteppableLines is the count of breakpoint-eligible lines at -O0.
	SteppableLines int
	// SteppedLines is the count of distinct lines stepped by the final
	// inputs at -O0.
	SteppedLines int
	// DebugCoveragePct = 100 * stepped / steppable.
	DebugCoveragePct float64
}

var (
	loadMu   sync.Mutex
	loadMemo = map[string]*Subject{}
)

// Load builds one subject: front-end the source, grow a corpus per
// harness, run cmin and trace-cover pruning, and install the final
// inputs in the tuner.Program. Results are memoized per (name, options).
func Load(name string, opts CorpusOptions) (*Subject, error) {
	if opts.Execs == 0 {
		opts.Execs = 600
	}
	if opts.StepBudget == 0 {
		opts.StepBudget = 1 << 19
	}
	key := fmt.Sprintf("%s/%d/%d/%d", name, opts.Execs, opts.StepBudget, opts.Seed)
	loadMu.Lock()
	if s := loadMemo[key]; s != nil {
		loadMu.Unlock()
		return s, nil
	}
	loadMu.Unlock()

	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	prog, err := tuner.LoadProgram(name, src, nil)
	if err != nil {
		return nil, err
	}
	// The corpus is grown against the -O0 build: coverage-guided
	// fuzzing needs the unoptimized edge structure, like OSS-Fuzz's
	// coverage builds.
	bin := prog.Build(pipeline.MustConfig(pipeline.GCC, "O0"))
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return nil, err
	}

	subject := &Subject{Program: prog}
	inputs := map[string][][]int64{}
	for hi, h := range prog.Info.Harnesses {
		fz := &corpus.Fuzzer{
			Bin: bin, Harness: h,
			Seed:       opts.Seed + int64(hi)*7919 + hash(name),
			Execs:      opts.Execs,
			StepBudget: opts.StepBudget,
		}
		queue := fz.Run()
		kept := corpus.CMin(queue)

		// Debug-trace set-cover pruning: trace each cmin survivor
		// individually, keep only inputs contributing new stepped lines.
		perInput := make([]*dbgtrace.Trace, len(kept))
		for i, idx := range kept {
			tr, err := sess.Trace(h, [][]int64{queue.Entries[idx].Input}, opts.StepBudget*4)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, h, err)
			}
			perInput[i] = tr
		}
		finalIdx := dbgtrace.CoverPrune(perInput)
		var final [][]int64
		for _, i := range finalIdx {
			final = append(final, queue.Entries[kept[i]].Input)
		}
		inputs[h] = final
		subject.Corpora = append(subject.Corpora, HarnessCorpus{
			Harness: h, Queue: len(queue.Entries),
			AfterCMin: len(kept), Inputs: final,
		})
	}
	prog.Inputs = inputs

	loadMu.Lock()
	loadMemo[key] = subject
	loadMu.Unlock()
	return subject, nil
}

// liteCache memoizes corpus-less subjects per name.
var liteCache evalcache.Cache[*Subject]

// LoadLite front-ends a subject without growing a corpus: no fuzzing,
// no minimization, no inputs installed. Suitable for consumers that
// only build and inspect the subject (the passreport damage table);
// Run on a lite subject executes the entry function.
func LoadLite(name string) (*Subject, error) {
	return liteCache.Do(name, func() (*Subject, error) {
		src, err := Source(name)
		if err != nil {
			return nil, err
		}
		prog, err := tuner.LoadProgram(name, src, nil)
		if err != nil {
			return nil, err
		}
		return &Subject{Program: prog}, nil
	})
}

// LoadAll loads every suite member. Subjects are independent (each owns
// its front-end, fuzzer PRNG, and debug session), so they load
// concurrently on the worker pool; the returned slice keeps the paper's
// suite order.
func LoadAll(opts CorpusOptions) ([]*Subject, error) {
	return workerpool.Map(context.Background(), Names,
		func(_ context.Context, _ int, n string) (*Subject, error) {
			return Load(n, opts)
		})
}

// Programs extracts the tuner programs from subjects.
func Programs(subjects []*Subject) []*tuner.Program {
	out := make([]*tuner.Program, len(subjects))
	for i, s := range subjects {
		out[i] = s.Program
	}
	return out
}

// ComputeStats builds the Table III row: input counts, reductions, and
// debug coverage at -O0.
func (s *Subject) ComputeStats() (Stats, error) {
	st := Stats{Name: s.Program.Name}
	base, err := s.Baseline()
	if err != nil {
		return st, err
	}
	st.SteppableLines = base.Steppable
	st.SteppedLines = len(s.BaselineSteppedLines(base))
	if st.SteppableLines > 0 {
		st.DebugCoveragePct = 100 * float64(st.SteppedLines) / float64(st.SteppableLines)
	}
	var sumFinal, sumQueue float64
	for _, hc := range s.Corpora {
		sumFinal += float64(len(hc.Inputs))
		if hc.Queue > 0 {
			sumQueue += 100 * (1 - float64(len(hc.Inputs))/float64(hc.Queue))
		}
	}
	if n := float64(len(s.Corpora)); n > 0 {
		st.AvgInputs = sumFinal / n
		st.ReductionPct = sumQueue / n
	}
	return st, nil
}

// BaselineSteppedLines lists the distinct lines stepped at -O0.
func (s *Subject) BaselineSteppedLines(base *dbgtrace.Trace) []int {
	lines := base.Lines()
	sort.Ints(lines)
	return lines
}

// hash gives a stable per-name seed component.
func hash(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h % 1000003
}
