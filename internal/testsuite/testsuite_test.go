package testsuite

import (
	"reflect"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/vm"
)

// quickOpts keeps suite loading fast in unit tests.
var quickOpts = CorpusOptions{Execs: 150, StepBudget: 1 << 17}

// TestAllProgramsCompile front-ends and builds every subject at every
// profile/level.
func TestAllProgramsCompile(t *testing.T) {
	for _, name := range Names {
		src, err := Source(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		info, err := pipeline.Frontend(name+".mc", src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(info.Harnesses) == 0 {
			t.Errorf("%s: no fuzz harnesses", name)
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
			for _, l := range append([]string{"O0"}, pipeline.Levels(p)...) {
				bin := pipeline.Build(ir0, pipeline.MustConfig(p, l))
				if len(bin.Code) == 0 {
					t.Errorf("%s %s-%s: empty binary", name, p, l)
				}
			}
		}
	}
}

// TestDifferentialAcrossLevels runs each harness on fixed inputs at every
// level and compares outputs against the O0 interpreter — the suite-wide
// semantics check.
func TestDifferentialAcrossLevels(t *testing.T) {
	inputs := [][]int64{
		{},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{'S', 'S', 'H', '-', '2', '\n', 8, 3, 20, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17},
		{'G', 'E', 'T', ' ', '/', 'a', ' ', 'H', '\n', 'C', ':', '1', '\n', '\r', '\n'},
		{73, 73, 42, 0, 8, 0, 0, 0, 2, 0, 1, 1, 1, 0, 0, 0, 99, 0, 0, 0},
		{255, 255, 255, 255, 0, 0, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1},
		{10, 10, 10, 10, 10, 10, 10, 1, 2, 3, 1, 2, 3, 1, 2, 3},
	}
	for _, name := range Names {
		src, err := Source(name)
		if err != nil {
			t.Fatal(err)
		}
		info, err := pipeline.Frontend(name+".mc", src)
		if err != nil {
			t.Fatal(err)
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range info.Harnesses {
			// Reference outputs from the IR interpreter.
			var want [][]int64
			for _, in := range inputs {
				it := ir.NewInterp(ir0, 1<<24)
				hd := it.NewArray(in)
				if _, err := it.Call(h, hd, int64(len(in))); err != nil {
					t.Fatalf("%s/%s: interp: %v", name, h, err)
				}
				want = append(want, it.Output())
			}
			for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
				for _, l := range pipeline.Levels(p) {
					bin := pipeline.Build(ir0, pipeline.MustConfig(p, l))
					for ii, in := range inputs {
						m := vm.New(bin)
						m.StepBudget = 1 << 24
						hd := m.NewArray(in)
						if _, err := m.Call(h, hd, int64(len(in))); err != nil {
							t.Fatalf("%s/%s %s-%s: %v", name, h, p, l, err)
						}
						if !reflect.DeepEqual(m.Output(), want[ii]) {
							t.Fatalf("%s/%s %s-%s input %d: got %v want %v",
								name, h, p, l, ii, m.Output(), want[ii])
						}
					}
				}
			}
		}
	}
}

// TestCorpusPipeline loads one subject through the full fuzz/cmin/cover
// pipeline and sanity-checks the statistics.
func TestCorpusPipeline(t *testing.T) {
	s, err := Load("zlib", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Corpora) == 0 {
		t.Fatal("no corpora")
	}
	for _, hc := range s.Corpora {
		if hc.Queue < len(hc.Inputs) {
			t.Errorf("%s: final inputs (%d) exceed queue (%d)", hc.Harness, len(hc.Inputs), hc.Queue)
		}
		if len(hc.Inputs) == 0 {
			t.Errorf("%s: pruning removed every input", hc.Harness)
		}
		if hc.AfterCMin > hc.Queue {
			t.Errorf("%s: cmin grew the corpus", hc.Harness)
		}
	}
	st, err := s.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SteppableLines == 0 || st.SteppedLines == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.DebugCoveragePct <= 10 {
		t.Errorf("debug coverage %.1f%% suspiciously low", st.DebugCoveragePct)
	}
	if st.ReductionPct <= 0 {
		t.Errorf("no queue reduction: %+v", st)
	}
}

// TestSuiteDebugQualityShape loads three subjects and verifies the
// Table IV shape on them: products in (0,1), monotone non-increasing
// with gcc level.
func TestSuiteDebugQualityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite measurement is slow")
	}
	for _, name := range []string{"zlib", "libpng", "lighttpd"} {
		s, err := Load(name, quickOpts)
		if err != nil {
			t.Fatal(err)
		}
		var prev float64 = 2
		for _, l := range []string{"Og", "O1", "O2", "O3"} {
			m, err := s.Product(pipeline.MustConfig(pipeline.GCC, l))
			if err != nil {
				t.Fatal(err)
			}
			if m <= 0 || m >= 1 {
				t.Errorf("%s gcc-%s: product %v outside (0,1)", name, l, m)
			}
			if m > prev+0.03 {
				t.Errorf("%s gcc-%s: product %v rose sharply from %v", name, l, m, prev)
			}
			prev = m
		}
	}
}
