package codegen

import (
	"sort"

	"debugtuner/internal/vm"
)

// Linear-scan register allocation over the laid-out machine IR.
//
// Registers 0..allocatableRegs-1 are assignable; the last three
// registers are reserved as spill scratch (three-operand instructions
// like astore/select can have all operands spilled at once). Debug markers never extend live ranges —
// debug information must not change code generation — which is precisely
// why a variable's binding can point at a register that has since been
// reused (and why the runtime materialization check exists).
const (
	allocatableRegs = vm.NumRegs - 3
	scratch0        = vm.NumRegs - 3
	scratch1        = vm.NumRegs - 2
	scratch2        = vm.NumRegs - 1
)

// dbgSpill is the post-RA marker kind for a variable bound to a spilled
// value; Imm holds the spill slot.
const dbgSpill = 3

type interval struct {
	vreg       int
	start, end int
	uses       float64 // frequency-weighted use count, for spill choice
	reg        int     // assigned register, or -1 when spilled
	spillSlot  int
	hint       int // move-related vreg for coalescing, or -1
}

// regalloc assigns physical registers, rewrites the code in place, and
// records spill slots in mf.spillSlotOf.
func regalloc(mf *MFunc, opts *Options) {
	order := mf.Blocks
	// Linear positions: each instruction gets an index in layout order.
	// Half-position numbering: instruction k reads at 2k and defines at
	// 2k+1, so a move's source interval ends strictly before its
	// destination begins and the two can share a register.
	pos := map[*MInstr]int{}
	blockStart := map[*MBlock]int{}
	blockEnd := map[*MBlock]int{}
	n := 0
	for _, b := range order {
		blockStart[b] = 2 * n
		for _, in := range b.Instrs {
			if in.Op == mDbg {
				continue
			}
			pos[in] = n
			n++
		}
		blockEnd[b] = 2 * n
	}

	liveIn, liveOut := liveness(mf)

	// Build single-range intervals.
	ivs := map[int]*interval{}
	get := func(v int) *interval {
		iv := ivs[v]
		if iv == nil {
			iv = &interval{vreg: v, start: 1 << 30, end: -1, reg: -1, hint: -1}
			ivs[v] = iv
		}
		return iv
	}
	extend := func(v, from, to int) {
		iv := get(v)
		if from < iv.start {
			iv.start = from
		}
		if to > iv.end {
			iv.end = to
		}
	}
	var reads []int
	for _, b := range order {
		for v := range liveIn[b] {
			extend(v, blockStart[b], blockStart[b])
		}
		for v := range liveOut[b] {
			extend(v, blockStart[b], blockEnd[b])
		}
		for _, in := range b.Instrs {
			if in.Op == mDbg {
				continue
			}
			p := pos[in]
			if d := defOf(in); d >= 0 {
				extend(d, 2*p+1, 2*p+1)
			}
			reads = readsOf(in, reads[:0])
			w := 1 + b.Freq
			for _, r := range reads {
				if r >= 0 {
					extend(r, 2*p, 2*p)
					get(r).uses += w
				}
			}
			if d := defOf(in); d >= 0 {
				get(d).uses += w
			}
			if in.Op == vm.OpMov {
				// Move-related intervals prefer one register (basic
				// out-of-SSA coalescing, always on). The CoalesceVars
				// toggle additionally chains hints across moves,
				// merging storage of distinct source variables —
				// gcc's tree-coalesce-vars, with its measured debug
				// cost.
				get(in.D).hint = in.A
				get(in.A).hint = in.D
			}
		}
	}

	if opts.CoalesceVars {
		// Transitive hint chaining: a->b->c moves all prefer one home.
		for _, iv := range ivs {
			seen := map[int]bool{iv.vreg: true}
			h := iv.hint
			for h >= 0 && !seen[h] {
				seen[h] = true
				next := -1
				if hv := ivs[h]; hv != nil {
					next = hv.hint
				}
				if next < 0 || seen[next] {
					break
				}
				h = next
			}
			if h >= 0 {
				iv.hint = h
			}
		}
	}
	list := make([]*interval, 0, len(ivs))
	for _, iv := range ivs {
		list = append(list, iv)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return list[i].vreg < list[j].vreg
	})

	// Scan.
	var active []*interval
	freeRegs := [allocatableRegs]bool{}
	for i := range freeRegs {
		freeRegs[i] = true
	}
	expire := func(now int) {
		kept := active[:0]
		for _, a := range active {
			if a.end < now {
				freeRegs[a.reg] = true
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
	}
	nextSpill := mf.NumSlots
	var spillEnds []int // per spill slot: end of last occupant's interval
	assignSlot := func(iv *interval) {
		if opts.ShareSpillSlots {
			for s := mf.NumSlots; s < nextSpill; s++ {
				if spillEnds[s-mf.NumSlots] < iv.start {
					spillEnds[s-mf.NumSlots] = iv.end
					iv.spillSlot = s
					return
				}
			}
		}
		iv.spillSlot = nextSpill
		spillEnds = append(spillEnds, iv.end)
		nextSpill++
	}
	for _, iv := range list {
		expire(iv.start)
		// Try the coalescing hint first.
		if iv.hint >= 0 {
			if h := ivs[iv.hint]; h != nil && h.reg >= 0 && freeRegs[h.reg] {
				iv.reg = h.reg
				freeRegs[h.reg] = false
				active = append(active, iv)
				continue
			}
		}
		assigned := false
		for r := 0; r < allocatableRegs; r++ {
			if freeRegs[r] {
				iv.reg = r
				freeRegs[r] = false
				active = append(active, iv)
				assigned = true
				break
			}
		}
		if assigned {
			continue
		}
		// Spill the active interval with the lowest frequency-weighted
		// use density: long-lived loop-carried values stay in registers
		// while cold scratch values go to the stack.
		victim := iv
		for _, a := range active {
			if spillScore(a) < spillScore(victim) {
				victim = a
			}
		}
		if victim == iv {
			assignSlot(iv)
			continue
		}
		iv.reg = victim.reg
		victim.reg = -1
		assignSlot(victim)
		for k, a := range active {
			if a == victim {
				active[k] = iv
				break
			}
		}
	}

	mf.spillSlotOf = map[int]int{}
	for _, iv := range list {
		if iv.reg < 0 {
			mf.spillSlotOf[iv.vreg] = iv.spillSlot
		}
	}
	mf.NumSlots = nextSpill

	// Rewrite: replace vregs with registers; spilled operands go through
	// the scratch registers with explicit slot traffic.
	regOf := func(v int) (int, bool) {
		iv := ivs[v]
		if iv == nil {
			return 0, true // never-used vreg; any register will do
		}
		if iv.reg >= 0 {
			return iv.reg, true
		}
		return iv.spillSlot, false
	}
	for _, b := range order {
		out := make([]*MInstr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			if in.Op == mDbg {
				if in.Sub == dbgVReg {
					if r, inReg := regOf(in.A); inReg {
						in.A = r
					} else {
						in.Sub = dbgSpill
						in.Imm = int64(r)
						in.A = -1
					}
				}
				out = append(out, in)
				continue
			}
			scratches := [3]int{scratch0, scratch1, scratch2}
			nextScratch := 0
			mapRead := func(v int) int {
				if v < 0 {
					return 0
				}
				r, inReg := regOf(v)
				if inReg {
					return r
				}
				s := scratches[nextScratch]
				nextScratch++
				out = append(out, &MInstr{
					Op: vm.OpLoadSlot, D: s, Imm: int64(r),
					A: -1, B: -1, C: -1,
				})
				return s
			}
			var spillStore *MInstr
			mapDef := func(v int) int {
				r, inReg := regOf(v)
				if inReg {
					return r
				}
				spillStore = &MInstr{
					Op: vm.OpStoreSlot, A: scratch0, Imm: int64(r),
					B: -1, C: -1, D: -1,
				}
				return scratch0
			}
			reads = readsOf(in, reads[:0])
			// Map reads in canonical operand order.
			switch len(reads) {
			case 0:
			default:
				// Rewrite each read operand field that holds a vreg.
				switch in.Op {
				case vm.OpMov, vm.OpNeg, vm.OpNot, vm.OpStoreSlot,
					vm.OpGStore, vm.OpNewArr, vm.OpLen, vm.OpArg,
					vm.OpPrint, vm.OpBr, vm.OpBinImm:
					in.A = mapRead(in.A)
				case vm.OpBin, vm.OpVBin, vm.OpALoad, vm.OpVLoad2:
					in.A = mapRead(in.A)
					in.B = mapRead(in.B)
				case vm.OpSelect, vm.OpAStore, vm.OpVStore2:
					in.A = mapRead(in.A)
					in.B = mapRead(in.B)
					in.C = mapRead(in.C)
				case vm.OpRet:
					if in.Sub != 0 {
						in.A = mapRead(in.A)
					}
				}
			}
			if d := defOf(in); d >= 0 {
				in.D = mapDef(d)
			} else if in.D >= 0 {
				in.D = 0
			}
			// Identity moves left over by coalescing disappear — but a
			// spilled-to-spilled move still needs its store: the value
			// was reloaded into scratch and must reach the destination
			// slot.
			if in.Op == vm.OpMov && in.A == in.D {
				if spillStore != nil {
					out = append(out, spillStore)
				}
				continue
			}
			out = append(out, in)
			if spillStore != nil {
				out = append(out, spillStore)
			}
		}
		b.Instrs = out
	}
}

// spillScore orders spill candidates: fewer weighted uses per covered
// position means cheaper to spill.
func spillScore(iv *interval) float64 {
	length := float64(iv.end-iv.start) + 1
	return iv.uses / length
}

// liveness computes per-block live-in/out vreg sets over the machine IR,
// ignoring debug markers.
func liveness(mf *MFunc) (liveIn, liveOut map[*MBlock]map[int]bool) {
	liveIn = map[*MBlock]map[int]bool{}
	liveOut = map[*MBlock]map[int]bool{}
	use := map[*MBlock]map[int]bool{}
	def := map[*MBlock]map[int]bool{}
	var reads []int
	for _, b := range mf.Blocks {
		u, d := map[int]bool{}, map[int]bool{}
		for _, in := range b.Instrs {
			if in.Op == mDbg {
				continue
			}
			reads = readsOf(in, reads[:0])
			for _, r := range reads {
				if r >= 0 && !d[r] {
					u[r] = true
				}
			}
			if dd := defOf(in); dd >= 0 {
				d[dd] = true
			}
		}
		use[b], def[b] = u, d
		liveIn[b], liveOut[b] = map[int]bool{}, map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(mf.Blocks) - 1; i >= 0; i-- {
			b := mf.Blocks[i]
			out := liveOut[b]
			for _, s := range b.Succs {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b]
			for v := range use[b] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !def[b][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}
