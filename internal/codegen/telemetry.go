package codegen

import (
	"time"

	"debugtuner/internal/telemetry"
)

// Backend telemetry: each optional machine-IR stage is wrapped in a
// before/after snapshot of the MIR debug metadata, mirroring the
// mid-end ledger in internal/passes. Damage is attributed to the
// profile toggle that enabled the stage (Options.PassNames), so the
// passreport table speaks the same names as the paper's rankings.

// toggleName resolves a stage id to its enabling toggle.
func (o *Options) toggleName(stage string) string {
	if n := o.PassNames[stage]; n != "" {
		return n
	}
	return stage
}

// mirSnap is the per-function machine-IR debug snapshot.
type mirSnap struct {
	instrs int
	lines  map[*MInstr]int
	bound  map[*MInstr]bool
	order  []*MBlock
}

func snapshotMIR(mf *MFunc) *mirSnap {
	s := &mirSnap{
		lines: map[*MInstr]int{},
		bound: map[*MInstr]bool{},
		order: append([]*MBlock(nil), mf.Blocks...),
	}
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mDbg {
				s.bound[in] = in.Sub != dbgNone
				continue
			}
			s.instrs++
			s.lines[in] = in.Line
		}
	}
	return s
}

// diffMIR compares mf against its snapshot. Deleted instructions that
// carried a line count as zeroed (their rows vanish from the line
// table — cross-jumping's cost); deleted bound markers count as
// dropped.
func diffMIR(before *mirSnap, mf *MFunc) telemetry.Damage {
	var d telemetry.Damage
	instrs := 0
	present := map[*MInstr]bool{}
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			present[in] = true
			if in.Op == mDbg {
				if before.bound[in] && in.Sub == dbgNone {
					d.DbgDropped++
				}
				continue
			}
			instrs++
			if old, ok := before.lines[in]; ok && old != in.Line {
				if in.Line == 0 {
					d.LinesZeroed++
				} else {
					d.LinesChanged++
				}
			}
		}
	}
	for in, line := range before.lines {
		if !present[in] && line > 0 {
			d.LinesZeroed++
		}
	}
	for in, wasBound := range before.bound {
		if wasBound && !present[in] {
			d.DbgDropped++
		}
	}
	d.InstrDelta = int64(instrs - before.instrs)
	return d
}

// displacedBlocks counts blocks whose predecessor in emission order
// changed — each displacement is a line-table discontinuity the
// stepping experience pays for (block placement's debug cost).
func displacedBlocks(before []*MBlock, mf *MFunc) int64 {
	prev := map[*MBlock]*MBlock{}
	for i := 1; i < len(before); i++ {
		prev[before[i]] = before[i-1]
	}
	var n int64
	for i := 1; i < len(mf.Blocks); i++ {
		if prev[mf.Blocks[i]] != mf.Blocks[i-1] {
			n++
		}
	}
	return n
}

// runStage executes one optional backend stage under the ledger when
// telemetry is enabled; with the sink nil it calls the stage directly.
func runStage(snk *telemetry.Sink, opts *Options, stage string, mf *MFunc, fn func()) {
	if snk == nil {
		fn()
		return
	}
	before := snapshotMIR(mf)
	t0 := time.Now()
	fn()
	d := diffMIR(before, mf)
	if stage == "layout" {
		d.LinesChanged += displacedBlocks(before.order, mf)
	}
	d.Runs, d.WallNS = 1, time.Since(t0).Nanoseconds()
	snk.AddDamage(opts.toggleName(stage), mf.Name, d)
}

// shrinkWrapDamage records the location cost of a prologue moved off
// the entry block: home-slot locations cannot materialize on the paths
// that return before it, ending each slot variable's whole-function
// range early.
func shrinkWrapDamage(snk *telemetry.Sink, opts *Options, mf *MFunc, wall time.Duration) {
	if snk == nil {
		return
	}
	d := telemetry.Damage{Runs: 1, WallNS: wall.Nanoseconds()}
	if mf.prologBlock != nil && len(mf.Blocks) > 0 && mf.prologBlock != mf.Blocks[0] {
		seen := map[int]bool{}
		for _, sym := range mf.SlotVars {
			if sym != nil && !seen[sym.ID] {
				seen[sym.ID] = true
				d.RangesEnded++
			}
		}
	}
	snk.AddDamage(opts.toggleName("shrink-wrap"), mf.Name, d)
}
