package codegen

import (
	"reflect"
	"testing"

	"debugtuner/internal/debuginfo"
	"debugtuner/internal/ir"
	"debugtuner/internal/irbuild"
	"debugtuner/internal/parser"
	"debugtuner/internal/passes"
	"debugtuner/internal/sema"
	"debugtuner/internal/vm"
)

// lower compiles MiniC source through optional passes into a binary.
func lower(t *testing.T, src string, opts Options, passNames ...string) (*vm.Binary, []int64) {
	t.Helper()
	prog, err := parser.ParseString("t", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := irbuild.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	it := ir.NewInterp(p, 1<<24)
	if _, err := it.Call("main"); err != nil {
		t.Fatal(err)
	}
	want := it.Output()
	work := p.Clone()
	ctx := &passes.Context{Prog: work, Salvage: true, InlineSmall: true, InlineBudget: 60}
	for _, n := range passNames {
		passes.Lookup(n).Run(ctx)
	}
	return Compile(work, opts), want
}

func runBin(t *testing.T, bin *vm.Binary) []int64 {
	t.Helper()
	m := vm.New(bin)
	m.StepBudget = 1 << 24
	if _, err := m.Call("main"); err != nil {
		t.Fatal(err)
	}
	return m.Output()
}

const cgSrc = `
var table: int[] = new int[16];
func load(i: int): int { return table[i & 15]; }
func main() {
	for (var i: int = 0; i < 16; i = i + 1) {
		table[i] = i * i + 3;
	}
	var acc: int = 0;
	for (var i: int = 0; i < 16; i = i + 1) {
		if (load(i) % 3 == 0) {
			acc = acc + load(i);
		} else {
			acc = acc - 1;
		}
	}
	print(acc);
}`

// TestEveryOptionCombination runs all 2^k back-end option subsets over
// the same optimized IR and checks behavioral equivalence — the back-end
// passes must compose in any combination.
func TestEveryOptionCombination(t *testing.T) {
	mids := []string{"sroa", "simplifycfg", "instcombine", "gvn", "dce",
		"guess-branch-probability"}
	toggles := []func(*Options){
		func(o *Options) { o.TER = true },
		func(o *Options) { o.MachineSink = true },
		func(o *Options) { o.Schedule = true },
		func(o *Options) { o.Layout = true },
		func(o *Options) { o.CrossJump = true },
		func(o *Options) { o.ShrinkWrap = true },
		func(o *Options) { o.ShareSpillSlots = true },
		func(o *Options) { o.CoalesceVars = true },
	}
	var want []int64
	for mask := 0; mask < 1<<len(toggles); mask++ {
		var opts Options
		for i, f := range toggles {
			if mask&(1<<i) != 0 {
				f(&opts)
			}
		}
		bin, w := lower(t, cgSrc, opts, mids...)
		if want == nil {
			want = w
		}
		got := runBin(t, bin)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("option mask %08b: got %v want %v", mask, got, want)
		}
	}
}

// TestCrossJumpMergesTails: identical suffixes across blocks shrink the
// binary.
func TestCrossJumpMergesTails(t *testing.T) {
	src := `
var g: int = 0;
func main() {
	var x: int = 9;
	if (x > 5) {
		g = g + 1;
		g = g * 3;
		print(g);
	} else {
		g = g - 1;
		g = g * 3;
		print(g);
	}
	print(x);
}`
	plain, want := lower(t, src, Options{}, "sroa", "simplifycfg")
	xj, _ := lower(t, src, Options{CrossJump: true}, "sroa", "simplifycfg")
	if got := runBin(t, xj); !reflect.DeepEqual(got, want) {
		t.Fatalf("crossjump broke semantics: %v vs %v", got, want)
	}
	if len(xj.Code) >= len(plain.Code) {
		t.Errorf("crossjump did not shrink code: %d vs %d", len(xj.Code), len(plain.Code))
	}
}

// TestShrinkWrapMovesPrologue: with an early exit, the prologue must not
// sit at the entry.
func TestShrinkWrapMovesPrologue(t *testing.T) {
	src := `
func work(n: int): int {
	if (n <= 0) { return 0; }
	var a: int = n * 3;
	var b: int = a + n;
	var c: int = b * a;
	var d: int = c - b;
	var e: int = d ^ a;
	var f0: int = e + c;
	var g0: int = f0 * 2;
	var h0: int = g0 - e;
	var i0: int = h0 + d;
	var j0: int = i0 * f0;
	var k0: int = j0 - g0;
	var l0: int = k0 + h0;
	return a + b + c + d + e + f0 + g0 + h0 + i0 + j0 + k0 + l0;
}
func main() {
	print(work(0));
	print(work(7));
}`
	// After promotion the frame is needed only for spills: the prologue
	// must either disappear (no frame at all) or move off the entry,
	// while the non-shrink-wrapped build keeps it at the entry.
	sw, want := lower(t, src, Options{ShrinkWrap: true}, "sroa", "simplifycfg")
	if got := runBin(t, sw); !reflect.DeepEqual(got, want) {
		t.Fatalf("shrink-wrap broke semantics")
	}
	plain, _ := lower(t, src, Options{}, "sroa", "simplifycfg")
	pe := func(bin *vm.Binary) (start, end uint32) {
		table, err := debuginfo.Decode(bin.Debug)
		if err != nil {
			t.Fatal(err)
		}
		for i := range table.Funcs {
			if table.Funcs[i].Name == "work" {
				return table.Funcs[i].Start, table.Funcs[i].PrologueEnd
			}
		}
		t.Fatal("work not found")
		return
	}
	ps, ppe := pe(plain)
	if ppe != ps+1 {
		t.Fatalf("plain build prologue not at entry: start=%d end=%d", ps, ppe)
	}
	ss, spe := pe(sw)
	if spe == ss+1 {
		t.Errorf("shrink-wrap left the prologue at the entry (start=%d end=%d)", ss, spe)
	}
}

// TestDebugSectionAddressesInBounds validates emitted tables for a range
// of option sets.
func TestDebugSectionAddressesInBounds(t *testing.T) {
	for _, opts := range []Options{
		{}, {TER: true, Layout: true, CrossJump: true, Schedule: true},
		{OptimisticRanges: true, ShareSpillSlots: true, ShrinkWrap: true},
	} {
		bin, _ := lower(t, cgSrc, opts, "sroa", "simplifycfg", "instcombine", "dce")
		table, err := debuginfo.Decode(bin.Debug)
		if err != nil {
			t.Fatal(err)
		}
		n := uint32(len(bin.Code))
		for _, e := range table.Lines {
			if e.Addr >= n {
				t.Fatalf("line row addr %d out of code (%d)", e.Addr, n)
			}
		}
		for _, v := range table.Vars {
			for _, e := range v.Entries {
				if e.End > n || e.Start > e.End {
					t.Fatalf("var %s entry [%d,%d) out of code (%d)",
						v.Name, e.Start, e.End, n)
				}
			}
		}
	}
}

// TestOptimisticVsPreciseRanges: the gcc policy must produce location
// coverage at least as wide as the precise policy.
func TestOptimisticVsPreciseRanges(t *testing.T) {
	span := func(optimistic bool) (total uint32) {
		bin, _ := lower(t, cgSrc, Options{OptimisticRanges: optimistic},
			"sroa", "simplifycfg", "instcombine", "gvn", "dce")
		table, err := debuginfo.Decode(bin.Debug)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range table.Vars {
			for _, e := range v.Entries {
				if e.Kind == debuginfo.LocReg {
					total += e.End - e.Start
				}
			}
		}
		return
	}
	if span(true) < span(false) {
		t.Fatalf("optimistic register coverage (%d) below precise (%d)",
			span(true), span(false))
	}
}
