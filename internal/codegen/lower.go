package codegen

import (
	"fmt"

	"debugtuner/internal/ir"
	"debugtuner/internal/vm"
)

// binSubFor maps IR binary opcodes to VM sub-operation codes.
var binSubFor = map[ir.Op]uint8{
	ir.OpAdd: vm.BinAdd, ir.OpSub: vm.BinSub, ir.OpMul: vm.BinMul,
	ir.OpDiv: vm.BinDiv, ir.OpRem: vm.BinRem, ir.OpAnd: vm.BinAnd,
	ir.OpOr: vm.BinOr, ir.OpXor: vm.BinXor, ir.OpShl: vm.BinShl,
	ir.OpShr: vm.BinShr, ir.OpEq: vm.BinEq, ir.OpNe: vm.BinNe,
	ir.OpLt: vm.BinLt, ir.OpLe: vm.BinLe, ir.OpGt: vm.BinGt,
	ir.OpGe: vm.BinGe,
}

// splitCriticalEdges inserts forwarding blocks on edges from multi-succ
// predecessors into multi-pred blocks with phis, so phi-elimination moves
// have a home that affects only their own edge.
func splitCriticalEdges(f *ir.Func) {
	for _, s := range append([]*ir.Block(nil), f.Blocks...) {
		if len(s.Preds) < 2 || len(s.Phis()) == 0 {
			continue
		}
		for pi := 0; pi < len(s.Preds); pi++ {
			p := s.Preds[pi]
			if len(p.Succs) < 2 {
				continue
			}
			mid := f.NewBlock()
			jmp := f.NewValue(mid, ir.OpJmp, 0)
			mid.Instrs = append(mid.Instrs, jmp)
			// Rewire exactly this edge occurrence: p's succ entry and
			// s's pred entry at pi.
			for si, ps := range p.Succs {
				if ps == s {
					p.Succs[si] = mid
					break
				}
			}
			mid.Preds = append(mid.Preds, p)
			mid.Succs = append(mid.Succs, s)
			s.Preds[pi] = mid
		}
	}
}

// lowerer carries per-function lowering state.
type lowerer struct {
	prog *ir.Program
	opts *Options
	mf   *MFunc
	vreg []int // ir value ID -> vreg
	fidx map[string]int64
}

// lowerFunc converts one IR function to machine IR.
func lowerFunc(prog *ir.Program, f *ir.Func, opts *Options, fidx map[string]int64) *MFunc {
	splitCriticalEdges(f)
	mf := &MFunc{
		Name: f.Name, NumSlots: f.NumSlots, NParams: f.NParams,
		StartLine: f.StartLine, Pure: f.Pure,
	}
	mf.SlotVars = append(mf.SlotVars, f.SlotVars...)
	lo := &lowerer{prog: prog, opts: opts, mf: mf, fidx: fidx}
	lo.vreg = make([]int, f.NumValueIDs())
	for i := range lo.vreg {
		lo.vreg[i] = -1
	}

	blockMap := make(map[*ir.Block]*MBlock, len(f.Blocks))
	for _, b := range f.Blocks {
		mb := &MBlock{ID: b.ID, Freq: b.Freq, Prob: b.Prob}
		blockMap[b] = mb
		mf.Blocks = append(mf.Blocks, mb)
	}
	// Pre-assign vregs for phis so moves can target them.
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpPhi {
				lo.vreg[v.ID] = mf.newVReg()
			}
		}
	}
	for _, b := range f.Blocks {
		mb := blockMap[b]
		for _, v := range b.Instrs {
			if v.Op.IsTerminator() {
				// Phi moves for each successor happen before the
				// terminator; on split edges the pred is single-succ.
				lo.emitPhiMoves(b, mb)
				lo.lowerTerm(b, mb, v, blockMap)
				continue
			}
			lo.lowerValue(mb, v)
		}
	}
	runTER(mf, opts.TER)
	mirDCE(mf)
	return mf
}

func (lo *lowerer) v(val *ir.Value) int {
	r := lo.vreg[val.ID]
	if r < 0 {
		r = lo.mf.newVReg()
		lo.vreg[val.ID] = r
	}
	return r
}

func (lo *lowerer) emit(mb *MBlock, in *MInstr) *MInstr {
	mb.Instrs = append(mb.Instrs, in)
	return in
}

func (lo *lowerer) lowerValue(mb *MBlock, v *ir.Value) {
	line := v.Line
	switch v.Op {
	case ir.OpPhi:
		// materialized by predecessor moves
	case ir.OpConst:
		lo.emit(mb, &MInstr{Op: vm.OpConst, D: lo.v(v), Imm: v.AuxInt, Line: line, A: -1, B: -1, C: -1})
	case ir.OpParam:
		lo.emit(mb, &MInstr{Op: vm.OpLoadParam, D: lo.v(v), Imm: v.AuxInt, Line: line, A: -1, B: -1, C: -1})
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe,
		ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		lo.emit(mb, &MInstr{Op: vm.OpBin, Sub: binSubFor[v.Op],
			A: lo.v(v.Args[0]), B: lo.v(v.Args[1]), D: lo.v(v), C: -1, Line: line})
	case ir.OpNeg:
		lo.emit(mb, &MInstr{Op: vm.OpNeg, A: lo.v(v.Args[0]), D: lo.v(v), B: -1, C: -1, Line: line})
	case ir.OpNot:
		lo.emit(mb, &MInstr{Op: vm.OpNot, A: lo.v(v.Args[0]), D: lo.v(v), B: -1, C: -1, Line: line})
	case ir.OpSelect:
		lo.emit(mb, &MInstr{Op: vm.OpSelect,
			A: lo.v(v.Args[0]), B: lo.v(v.Args[1]), C: lo.v(v.Args[2]), D: lo.v(v), Line: line})
	case ir.OpSlotLoad:
		lo.emit(mb, &MInstr{Op: vm.OpLoadSlot, D: lo.v(v), Imm: v.AuxInt, A: -1, B: -1, C: -1, Line: line})
	case ir.OpSlotStore:
		lo.emit(mb, &MInstr{Op: vm.OpStoreSlot, A: lo.v(v.Args[0]), Imm: v.AuxInt, B: -1, C: -1, D: -1, Line: line})
	case ir.OpGLoad, ir.OpGArr:
		lo.emit(mb, &MInstr{Op: vm.OpGLoad, D: lo.v(v), Imm: v.AuxInt, A: -1, B: -1, C: -1, Line: line})
	case ir.OpGStore:
		lo.emit(mb, &MInstr{Op: vm.OpGStore, A: lo.v(v.Args[0]), Imm: v.AuxInt, B: -1, C: -1, D: -1, Line: line})
	case ir.OpNewArray:
		lo.emit(mb, &MInstr{Op: vm.OpNewArr, A: lo.v(v.Args[0]), D: lo.v(v), B: -1, C: -1, Line: line})
	case ir.OpALoad:
		lo.emit(mb, &MInstr{Op: vm.OpALoad, A: lo.v(v.Args[0]), B: lo.v(v.Args[1]), D: lo.v(v), C: -1, Line: line})
	case ir.OpAStore:
		lo.emit(mb, &MInstr{Op: vm.OpAStore,
			A: lo.v(v.Args[0]), B: lo.v(v.Args[1]), C: lo.v(v.Args[2]), D: -1, Line: line})
	case ir.OpLen:
		lo.emit(mb, &MInstr{Op: vm.OpLen, A: lo.v(v.Args[0]), D: lo.v(v), B: -1, C: -1, Line: line})
	case ir.OpVLoad2:
		lo.emit(mb, &MInstr{Op: vm.OpVLoad2, A: lo.v(v.Args[0]), B: lo.v(v.Args[1]), D: lo.v(v), C: -1, Line: line})
	case ir.OpVBin:
		lo.emit(mb, &MInstr{Op: vm.OpVBin, Sub: binSubFor[ir.Op(v.AuxInt)],
			A: lo.v(v.Args[0]), B: lo.v(v.Args[1]), D: lo.v(v), C: -1, Line: line})
	case ir.OpVStore2:
		lo.emit(mb, &MInstr{Op: vm.OpVStore2,
			A: lo.v(v.Args[0]), B: lo.v(v.Args[1]), C: lo.v(v.Args[2]), D: -1, Line: line})
	case ir.OpCall:
		for _, a := range v.Args {
			lo.emit(mb, &MInstr{Op: vm.OpArg, A: lo.v(a), B: -1, C: -1, D: -1, Line: line})
		}
		fi, ok := lo.fidx[v.Aux]
		if !ok {
			panic(fmt.Sprintf("codegen: call to unknown function %q", v.Aux))
		}
		lo.emit(mb, &MInstr{Op: vm.OpCall, D: lo.v(v), Imm: fi, A: -1, B: -1, C: -1, Line: line})
	case ir.OpPrint:
		lo.emit(mb, &MInstr{Op: vm.OpPrint, A: lo.v(v.Args[0]), B: -1, C: -1, D: -1, Line: line})
	case ir.OpDbgValue:
		in := &MInstr{Op: mDbg, Var: v.Var, A: -1, B: -1, C: -1, D: -1, Line: line}
		switch {
		case len(v.Args) == 0:
			in.Sub = dbgNone
		case v.Args[0].Op == ir.OpConst:
			in.Sub = dbgConst
			in.Imm = v.Args[0].AuxInt
		default:
			in.Sub = dbgVReg
			in.A = lo.v(v.Args[0])
		}
		lo.emit(mb, in)
	default:
		panic(fmt.Sprintf("codegen: cannot lower %v", v.Op))
	}
}

func (lo *lowerer) lowerTerm(b *ir.Block, mb *MBlock, v *ir.Value, blockMap map[*ir.Block]*MBlock) {
	switch v.Op {
	case ir.OpRet:
		in := &MInstr{Op: vm.OpRet, A: -1, B: -1, C: -1, D: -1, Line: v.Line}
		if len(v.Args) == 1 {
			in.Sub = 1
			in.A = lo.v(v.Args[0])
		}
		lo.emit(mb, in)
	case ir.OpJmp:
		lo.emit(mb, &MInstr{Op: vm.OpJmp, A: -1, B: -1, C: -1, D: -1, Line: v.Line})
		mb.Succs = []*MBlock{blockMap[b.Succs[0]]}
	case ir.OpBr:
		lo.emit(mb, &MInstr{Op: vm.OpBr, A: lo.v(v.Args[0]), B: -1, C: -1, D: -1, Line: v.Line})
		mb.Succs = []*MBlock{blockMap[b.Succs[0]], blockMap[b.Succs[1]]}
	}
	for _, s := range mb.Succs {
		s.Preds = append(s.Preds, mb)
	}
}

// emitPhiMoves lowers the phi semantics of b's successors into parallel
// copies at the end of b (before its terminator position — the caller
// emits the terminator afterwards). Critical edges were split, so when a
// successor has phis either b is its only predecessor source of conflict
// or b is a dedicated forwarding block.
func (lo *lowerer) emitPhiMoves(b *ir.Block, mb *MBlock) {
	type pair struct{ dst, src int }
	var pairs []pair
	for _, s := range b.Succs {
		pi := -1
		for i, p := range s.Preds {
			if p == b {
				pi = i
				break
			}
		}
		for _, phi := range s.Instrs {
			if phi.Op != ir.OpPhi {
				break
			}
			dst := lo.v(phi)
			src := lo.v(phi.Args[pi])
			if dst != src {
				pairs = append(pairs, pair{dst, src})
			}
		}
	}
	if len(pairs) == 0 {
		return
	}
	// Parallel copy resolution: emit copies whose destination is not a
	// pending source; break cycles with a temporary.
	for len(pairs) > 0 {
		emitted := false
		for i, p := range pairs {
			isSrc := false
			for j, q := range pairs {
				if i != j && q.src == p.dst {
					isSrc = true
					break
				}
			}
			if isSrc {
				continue
			}
			lo.emit(mb, &MInstr{Op: vm.OpMov, D: p.dst, A: p.src, B: -1, C: -1})
			pairs = append(pairs[:i], pairs[i+1:]...)
			emitted = true
			break
		}
		if emitted {
			continue
		}
		// Cycle: rotate through a temp.
		tmp := lo.mf.newVReg()
		p := pairs[0]
		lo.emit(mb, &MInstr{Op: vm.OpMov, D: tmp, A: p.src, B: -1, C: -1})
		for j := range pairs {
			if pairs[j].src == p.src {
				pairs[j].src = tmp
			}
		}
	}
}

// runTER folds constants into immediate operands and lets the now-unused
// constant loads die — gcc's temporary expression replacement at
// expansion time. Short immediates (fitting the instruction word) fold
// unconditionally during lowering, as on any real ISA; the tree-ter
// toggle extends folding to wide constants, whose materializing loads —
// and their line-table rows — then disappear.
func runTER(mf *MFunc, full bool) {
	constVal := map[int]int64{}
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			if in.Op == vm.OpConst {
				constVal[in.D] = in.Imm
			}
		}
	}
	foldable := func(c int64) bool {
		return full || (c >= -64 && c < 64)
	}
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			if in.Op != vm.OpBin {
				continue
			}
			if c, ok := constVal[in.B]; ok && foldable(c) {
				in.Op = vm.OpBinImm
				in.Imm = c
				in.B = -1
				continue
			}
			if c, ok := constVal[in.A]; ok && commutative(in.Sub) && foldable(c) {
				in.A = in.B
				in.Op = vm.OpBinImm
				in.Imm = c
				in.B = -1
			}
		}
	}
}

func commutative(sub uint8) bool {
	switch sub {
	case vm.BinAdd, vm.BinMul, vm.BinAnd, vm.BinOr, vm.BinXor,
		vm.BinEq, vm.BinNe:
		return true
	}
	return false
}

// mirDCE removes pure machine instructions whose destinations are never
// read. Debug markers referencing a removed constant convert to constant
// markers; markers referencing other removed values become "optimized
// out".
func mirDCE(mf *MFunc) {
	for {
		used := map[int]bool{}
		var reads []int
		for _, b := range mf.Blocks {
			for _, in := range b.Instrs {
				reads = readsOf(in, reads[:0])
				for _, r := range reads {
					if r >= 0 && in.Op != mDbg {
						used[r] = true
					}
				}
			}
		}
		changed := false
		for _, b := range mf.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				d := defOf(in)
				removable := d >= 0 && !used[d] && !hasSideEffect(in)
				if !removable {
					kept = append(kept, in)
					continue
				}
				// Fix markers bound to the removed value.
				for _, bb := range mf.Blocks {
					for _, mk := range bb.Instrs {
						if mk.Op == mDbg && mk.Sub == dbgVReg && mk.A == d {
							if in.Op == vm.OpConst {
								mk.Sub = dbgConst
								mk.Imm = in.Imm
								mk.A = -1
							} else {
								mk.Sub = dbgNone
								mk.A = -1
							}
						}
					}
				}
				changed = true
			}
			b.Instrs = kept
		}
		if !changed {
			return
		}
	}
}
