package codegen

import (
	"sort"

	"debugtuner/internal/vm"
)

// Back-end transformation passes over machine IR. Each corresponds to a
// DebugTuner toggle; their debug costs are the mechanisms the paper's
// rankings surface for back-end passes (annotated '*' in Tables V/VI).

// machineSink moves pure single-use machine instructions into the block
// containing their use, skipping work on paths that do not need it.
// Sunk instructions lose their line attribution, as LLVM's
// MachineSinking does.
func machineSink(mf *MFunc) {
	for iter := 0; iter < 3; iter++ {
		// useBlock[v]: unique using block, or nil/multi.
		type useInfo struct {
			block *MBlock
			multi bool
			n     int
		}
		uses := map[int]*useInfo{}
		defCount := map[int]int{}
		var reads []int
		for _, b := range mf.Blocks {
			for _, in := range b.Instrs {
				if in.Op != mDbg {
					if d := defOf(in); d >= 0 {
						defCount[d]++
					}
				}
				reads = readsOf(in, reads[:0])
				for _, r := range reads {
					if r < 0 || in.Op == mDbg {
						continue
					}
					u := uses[r]
					if u == nil {
						u = &useInfo{}
						uses[r] = u
					}
					u.n++
					switch {
					case u.multi:
					case u.block == nil:
						u.block = b
					case u.block != b:
						u.block = nil
						u.multi = true
					}
				}
			}
		}
		changed := false
		moved := map[*MBlock][]*MInstr{}
		for _, b := range mf.Blocks {
			// laterDefs[r] counts defs of r at or after the current scan
			// position; an instruction whose operand is redefined later
			// in the block (a phi move) must not move past that write.
			laterDefs := map[int]int{}
			for _, in := range b.Instrs {
				if in.Op != mDbg {
					if d := defOf(in); d >= 0 {
						laterDefs[d]++
					}
				}
			}
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				d := defOf(in)
				if d >= 0 && in.Op != mDbg {
					laterDefs[d]--
				}
				sinkable := d >= 0 && !hasSideEffect(in) && !isMemRead(in) &&
					in.Op != mDbg && defCount[d] == 1
				if sinkable {
					reads = readsOf(in, reads[:0])
					for _, r := range reads {
						if r >= 0 && laterDefs[r] > 0 {
							sinkable = false // anti-dependency on a later write
							break
						}
					}
				}
				if !sinkable {
					kept = append(kept, in)
					continue
				}
				u := uses[d]
				// The target must be a single-pred direct successor so
				// the operands still dominate the sunk position.
				if u == nil || u.multi || u.block == nil || u.block == b ||
					!isSucc(b, u.block) || len(u.block.Preds) != 1 {
					kept = append(kept, in)
					continue
				}
				// Sink to the top of the using block, losing the line.
				// Batched so dependent sunk instructions keep their
				// relative order.
				in.Line = 0
				moved[u.block] = append(moved[u.block], in)
				changed = true
			}
			b.Instrs = kept
		}
		for target, ins := range moved {
			target.Instrs = append(append([]*MInstr{}, ins...), target.Instrs...)
		}
		if !changed {
			return
		}
	}
}

func isSucc(b, s *MBlock) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}

// schedule performs per-block list scheduling to separate loads from
// their consumers, hiding the machine's load-use stall. An instruction
// that moves above code attributed to a different source line loses its
// own line — mirroring how aggressive scheduling degrades line-table
// precision (the paper's schedule-insns2, top-3 at O2/O3 in gcc).
func schedule(mf *MFunc) {
	for _, b := range mf.Blocks {
		scheduleBlock(b)
	}
}

func scheduleBlock(b *MBlock) {
	// Delay-slot filling: when a load's result is consumed by the very
	// next instruction (a pipeline stall on this machine), look a short
	// window ahead for an independent pure instruction and hoist it in
	// between. The bounded window keeps register-pressure growth small,
	// unlike full list scheduling before allocation.
	instrs := b.Instrs
	for i, in := range instrs {
		in.origIdx = i
	}
	var reads []int
	readsVreg := func(in *MInstr, v int) bool {
		reads = readsOf(in, reads[:0])
		for _, r := range reads {
			if r == v {
				return true
			}
		}
		return false
	}
	const window = 6
	for i := 0; i+1 < len(instrs); i++ {
		ld := instrs[i]
		if !isMemRead(ld) {
			continue
		}
		d := defOf(ld)
		use := i + 1
		for use < len(instrs) && instrs[use].Op == mDbg {
			use++
		}
		if use >= len(instrs) || !readsVreg(instrs[use], d) {
			continue
		}
		// Find a pure, independent instruction to hoist between the
		// load and its consumer.
		for j := use + 1; j < len(instrs) && j <= use+window; j++ {
			cand := instrs[j]
			if cand.Op == mDbg || hasSideEffect(cand) || isMemRead(cand) {
				continue
			}
			cd := defOf(cand)
			if cd < 0 {
				continue
			}
			ok := true
			for k := use; k < j; k++ {
				mid := instrs[k]
				md := defOf(mid)
				// cand must not read anything defined in between, and
				// nothing in between may read or redefine cand's def.
				if md >= 0 && readsVreg(cand, md) {
					ok = false
					break
				}
				if readsVreg(mid, cd) || (md == cd && mid.Op != mDbg) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Hoist cand to sit right after the load; crossing code of a
			// different source line drops its own line attribution, the
			// measured debug cost of scheduling.
			for k := use; k < j; k++ {
				if instrs[k].Line > 0 && cand.Line > 0 && instrs[k].Line != cand.Line {
					cand.Line = 0
					break
				}
			}
			copy(instrs[use+1:j+1], instrs[use:j])
			instrs[use] = cand
			break
		}
	}
}

// rpoSort arranges the blocks in reverse postorder, the canonical linear
// order for interval construction and a sane default code layout.
func rpoSort(mf *MFunc) {
	seen := map[*MBlock]bool{}
	var order []*MBlock
	var visit func(b *MBlock)
	visit = func(b *MBlock) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(mf.Blocks[0])
	for _, b := range mf.Blocks {
		if !seen[b] {
			seen[b] = true
			order = append(order, b)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	// The reversal puts any unreachable stragglers first; rotate them to
	// the end so the entry block leads.
	for len(order) > 0 && order[0] != mf.Blocks[0] {
		order = append(order[1:], order[0])
	}
	mf.Blocks = order
}

// layout performs greedy trace placement: starting from the entry, each
// block is followed by its most probable unplaced successor, so hot
// paths run fall-through (with branch inversion at emission) and cold
// blocks sink to the end. Placement quality tracks the branch
// probabilities it is fed — the coupling the AutoFDO study exploits.
func layout(mf *MFunc) {
	if len(mf.Blocks) < 3 {
		return
	}
	placed := map[*MBlock]bool{}
	inPending := map[*MBlock]bool{}
	var pending []*MBlock
	var order []*MBlock
	note := func(b *MBlock) {
		if !placed[b] && !inPending[b] {
			inPending[b] = true
			pending = append(pending, b)
		}
	}
	cur := mf.Blocks[0]
	for cur != nil {
		placed[cur] = true
		order = append(order, cur)
		// Follow the hottest unplaced successor (trace formation).
		var next *MBlock
		switch len(cur.Succs) {
		case 1:
			if !placed[cur.Succs[0]] {
				next = cur.Succs[0]
			}
		case 2:
			hot, cold := cur.Succs[0], cur.Succs[1]
			if cur.Prob < 0.5 {
				hot, cold = cold, hot
			}
			if !placed[hot] {
				next = hot
				note(cold)
			} else if !placed[cold] {
				next = cold
			}
		}
		if next == nil {
			// Dead end: continue with the hottest pending block.
			best := -1
			for i, b := range pending {
				if placed[b] {
					continue
				}
				if best < 0 || b.Freq > pending[best].Freq ||
					(b.Freq == pending[best].Freq && b.ID < pending[best].ID) {
					best = i
				}
			}
			if best < 0 {
				// Fall back to the original order for anything missed.
				for _, b := range mf.Blocks {
					if !placed[b] {
						next = b
						break
					}
				}
			} else {
				next = pending[best]
				pending = append(pending[:best], pending[best+1:]...)
			}
		}
		cur = next
	}
	mf.Blocks = order
}

// shrinkWrap moves the prologue from the entry to the closest block that
// dominates all frame accesses, hoisted out of loops. Paths that return
// before reaching it skip the frame-setup cost, and slot locations on
// those paths cannot materialize — the measured debug cost of
// shrink-wrapping.
func shrinkWrap(mf *MFunc) {
	var needs []*MBlock
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			if in.Op == vm.OpLoadSlot || in.Op == vm.OpStoreSlot {
				needs = append(needs, b)
				break
			}
		}
	}
	if len(needs) == 0 {
		mf.prologBlock = nil // leaf frame: no prologue at all
		return
	}
	idom := mirDominators(mf)
	place := needs[0]
	for _, b := range needs[1:] {
		place = commonDom(idom, place, b)
	}
	// Hoist out of loops: a block is a loop member if one of its
	// (transitive) predecessors is dominated by it.
	for place != mf.Blocks[0] && inMIRLoop(mf, idom, place) {
		place = idom[place]
	}
	mf.prologBlock = place
}

func mirDominators(mf *MFunc) map[*MBlock]*MBlock {
	// Cooper-Harvey-Kennedy over MIR blocks.
	var order []*MBlock
	seen := map[*MBlock]bool{}
	var visit func(b *MBlock)
	visit = func(b *MBlock) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(mf.Blocks[0])
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	index := map[*MBlock]int{}
	for i, b := range order {
		index[b] = i
	}
	idom := map[*MBlock]*MBlock{order[0]: order[0]}
	intersect := func(a, b *MBlock) *MBlock {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			var nd *MBlock
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue
				}
				if nd == nil {
					nd = p
				} else {
					nd = intersect(nd, p)
				}
			}
			if nd != nil && idom[b] != nd {
				idom[b] = nd
				changed = true
			}
		}
	}
	return idom
}

func commonDom(idom map[*MBlock]*MBlock, a, b *MBlock) *MBlock {
	seen := map[*MBlock]bool{}
	for x := a; ; x = idom[x] {
		seen[x] = true
		if idom[x] == x {
			break
		}
	}
	for x := b; ; x = idom[x] {
		if seen[x] {
			return x
		}
		if idom[x] == x {
			return x
		}
	}
}

func inMIRLoop(mf *MFunc, idom map[*MBlock]*MBlock, b *MBlock) bool {
	// b is in a loop if some block it dominates has an edge back to it,
	// or any ancestor-dominating back edge encloses it; approximate with
	// the standard back-edge test over all blocks.
	for _, x := range mf.Blocks {
		for _, s := range x.Succs {
			if mirDominates(idom, s, x) {
				// back edge x->s: loop body = blocks reachable backward
				// from x up to s; b is inside if s dominates b and b
				// reaches x.
				if mirDominates(idom, s, b) && reachesBackward(x, s, b) {
					return true
				}
			}
		}
	}
	return false
}

func mirDominates(idom map[*MBlock]*MBlock, a, b *MBlock) bool {
	for {
		if a == b {
			return true
		}
		n := idom[b]
		if n == nil || n == b {
			return false
		}
		b = n
	}
}

// reachesBackward reports whether b is in the natural loop of back edge
// latch->header.
func reachesBackward(latch, header, b *MBlock) bool {
	if b == header || b == latch {
		return true
	}
	seen := map[*MBlock]bool{header: true, latch: true}
	stack := []*MBlock{latch}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range x.Preds {
			if p == b {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// crossJump merges identical instruction suffixes of blocks that share a
// jump target (run post-RA, when "identical" means identical machine
// words). The merged tail keeps the first block's source lines; the
// other block's lines vanish from the line table — cross-jumping's
// characteristic debug cost.
func crossJump(mf *MFunc) {
	changed := true
	for rounds := 0; changed && rounds < 4; rounds++ {
		changed = false
		// Group blocks by their control-flow continuation.
		groups := map[string][]*MBlock{}
		for _, b := range mf.Blocks {
			t := b.Term()
			if t == nil {
				continue
			}
			var key string
			switch t.Op {
			case vm.OpJmp:
				key = "j" + itoa(b.Succs[0].ID)
			case vm.OpRet:
				key = "r"
			default:
				continue
			}
			groups[key] = append(groups[key], b)
		}
		var keys []string
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := groups[k]
			if len(g) < 2 {
				continue
			}
			sort.Slice(g, func(i, j int) bool { return g[i].ID < g[j].ID })
			for i := 0; i < len(g); i++ {
				for j := i + 1; j < len(g); j++ {
					if mergeTails(mf, g[i], g[j]) {
						changed = true
					}
				}
			}
		}
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// realSuffix returns the non-marker instructions of the block, suffix
// aligned (markers excluded from matching but retained in x's tail).
func realInstrs(b *MBlock) []*MInstr {
	var out []*MInstr
	for _, in := range b.Instrs {
		if in.Op != mDbg {
			out = append(out, in)
		}
	}
	return out
}

func sameInstr(a, b *MInstr) bool {
	return a.Op == b.Op && a.Sub == b.Sub && a.A == b.A && a.B == b.B &&
		a.C == b.C && a.D == b.D && a.Imm == b.Imm
}

// mergeTails merges the common suffix of x and y (including their
// terminators) into a new shared tail block when at least two real
// instructions match. The tail is built from x's instructions, so x's
// lines and markers survive and y's disappear.
func mergeTails(mf *MFunc, x, y *MBlock) bool {
	if x == y {
		return false
	}
	rx, ry := realInstrs(x), realInstrs(y)
	n := 0
	for n < len(rx) && n < len(ry) {
		if !sameInstr(rx[len(rx)-1-n], ry[len(ry)-1-n]) {
			break
		}
		n++
	}
	// Require the terminator plus at least one more instruction, and
	// leave at least one real instruction in each block (a jump must
	// remain expressible).
	if n < 2 || n >= len(rx) && n >= len(ry) {
		return false
	}
	if n >= len(rx) || n >= len(ry) {
		return false
	}
	tail := &MBlock{ID: 1 << 16, Freq: x.Freq + y.Freq}
	for _, b := range mf.Blocks {
		if b.ID >= tail.ID {
			tail.ID = b.ID + 1
		}
	}
	// The tail takes x's suffix instructions (markers included).
	cut := len(x.Instrs)
	realSeen := 0
	for cut > 0 && realSeen < n {
		cut--
		if x.Instrs[cut].Op != mDbg {
			realSeen++
		}
	}
	tail.Instrs = append(tail.Instrs, x.Instrs[cut:]...)
	x.Instrs = x.Instrs[:cut]
	// Drop y's suffix (and any markers inside it).
	cut = len(y.Instrs)
	realSeen = 0
	for cut > 0 && realSeen < n {
		cut--
		if y.Instrs[cut].Op != mDbg {
			realSeen++
		}
	}
	y.Instrs = y.Instrs[:cut]

	// Rewire control flow: tail inherits x's successors; x and y jump
	// to the tail.
	tail.Succs = x.Succs
	for _, s := range tail.Succs {
		for i, p := range s.Preds {
			if p == x {
				s.Preds[i] = tail
			}
		}
		// Remove y from succ preds; y no longer reaches them directly.
		for i := len(s.Preds) - 1; i >= 0; i-- {
			if s.Preds[i] == y {
				s.Preds = append(s.Preds[:i], s.Preds[i+1:]...)
			}
		}
	}
	x.Succs = []*MBlock{tail}
	y.Succs = []*MBlock{tail}
	tail.Preds = []*MBlock{x, y}
	x.Instrs = append(x.Instrs, &MInstr{Op: vm.OpJmp, A: -1, B: -1, C: -1, D: -1})
	y.Instrs = append(y.Instrs, &MInstr{Op: vm.OpJmp, A: -1, B: -1, C: -1, D: -1})
	// Insert the tail right after x in layout order.
	for i, b := range mf.Blocks {
		if b == x {
			mf.Blocks = append(mf.Blocks[:i+1],
				append([]*MBlock{tail}, mf.Blocks[i+1:]...)...)
			break
		}
	}
	return true
}
