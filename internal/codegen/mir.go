// Package codegen is the MiniC back end: it lowers SSA IR to machine IR
// with virtual registers, runs the back-end optimization passes the paper
// ranks (scheduling, block placement, cross-jumping, machine sinking,
// shrink-wrapping, spill-slot sharing, TER, variable coalescing),
// allocates registers, and emits a vm.Binary together with its
// debug-information section.
package codegen

import (
	"debugtuner/internal/ast"
	"debugtuner/internal/vm"
)

// Options selects back-end behavior. Each field corresponds to a
// DebugTuner-visible pass toggle; pipeline.Config translates the enabled
// pass set into this struct.
type Options struct {
	// TER folds single-use constants into immediate operands
	// (gcc tree-ter).
	TER bool
	// MachineSink moves pure machine instructions into the successor
	// block that uses them (clang "Machine code sinking").
	MachineSink bool
	// Schedule enables pre-RA list scheduling to hide load latency
	// (gcc schedule-insns2).
	Schedule bool
	// Layout enables hot-path block placement (gcc reorder-blocks /
	// clang "Branch Prob BB Placement").
	Layout bool
	// CrossJump merges identical block suffixes post-RA
	// (gcc crossjumping / clang "Control Flow Optimizer").
	CrossJump bool
	// ShrinkWrap sinks the prologue to the first frame-using block.
	ShrinkWrap bool
	// ShareSpillSlots lets non-overlapping spill intervals share frame
	// slots (gcc ira-share-spill-slots).
	ShareSpillSlots bool
	// CoalesceVars biases the allocator to assign move-related
	// intervals one register and deletes the moves
	// (gcc tree-coalesce-vars).
	CoalesceVars bool
	// PassNames maps backend stage ids ("schedule", "layout",
	// "crossjump", "shrink-wrap", "machine-sink") to the profile
	// toggle name that enabled the stage ("schedule-insns2",
	// "reorder-blocks" vs "block-placement", ...). pipeline fills it;
	// telemetry attributes backend damage and timing to these names.
	PassNames map[string]string
	// OptimisticRanges keeps a variable's register location open until
	// the next binding or function end even after the register is
	// clobbered — the gcc-profile behavior whose overestimation the
	// static metric counts. The precise policy (clang-like) closes the
	// entry at the clobber.
	OptimisticRanges bool
	// ForProfiling mirrors -fdebug-info-for-profiling.
	ForProfiling bool
}

// mDbg is the machine pseudo-op for a debug binding marker. It emits no
// code; the emitter turns runs of markers into location-list entries and
// owner tags.
const mDbg vm.Op = 200

// Debug marker kinds (MInstr.Sub for mDbg).
const (
	dbgNone  = 0 // variable optimized out from here
	dbgVReg  = 1 // variable's value lives in vreg A
	dbgConst = 2 // variable's value is the constant Imm
)

// MInstr is one machine instruction. Before register allocation A-D hold
// virtual register numbers (-1 = unused); after allocation they hold
// physical registers.
type MInstr struct {
	Op   vm.Op
	Sub  uint8
	A    int
	B    int
	C    int
	D    int
	Imm  int64
	Line int

	// Var is the bound variable for mDbg markers.
	Var *ast.Symbol

	// origIdx is the instruction's index before scheduling, used to
	// detect order inversions that drop line attribution.
	origIdx int
}

// MBlock is a machine basic block.
type MBlock struct {
	ID     int
	Instrs []*MInstr
	// Succs: for a trailing Br, Succs[0] is taken and Succs[1] falls
	// through; for Jmp, Succs[0]; none for Ret.
	Succs []*MBlock
	Preds []*MBlock
	Freq  float64
	Prob  float64
}

// Term returns the trailing control-flow instruction, or nil.
func (b *MBlock) Term() *MInstr {
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Op == mDbg {
			continue
		}
		switch in.Op {
		case vm.OpJmp, vm.OpBr, vm.OpRet:
			return in
		}
		return nil
	}
	return nil
}

// MFunc is one function in machine form.
type MFunc struct {
	Name      string
	Blocks    []*MBlock
	NumVRegs  int
	NumSlots  int // home slots; spill slots are appended by the allocator
	SlotVars  []*ast.Symbol
	NParams   int
	StartLine int
	Pure      bool

	// spillSlotOf maps spilled vregs to their frame slot; filled by the
	// register allocator and consumed by the emitter for LocSpill
	// entries.
	spillSlotOf map[int]int
	// prologBlock receives the OpProlog instruction (entry by default,
	// moved by shrink-wrapping).
	prologBlock *MBlock
}

func (f *MFunc) newVReg() int {
	f.NumVRegs++
	return f.NumVRegs - 1
}

// readsOf appends the vregs the instruction reads.
func readsOf(in *MInstr, out []int) []int {
	switch in.Op {
	case vm.OpMov, vm.OpNeg, vm.OpNot, vm.OpStoreSlot, vm.OpGStore,
		vm.OpNewArr, vm.OpLen, vm.OpArg, vm.OpPrint, vm.OpBr, vm.OpBinImm:
		out = append(out, in.A)
	case vm.OpBin, vm.OpVBin:
		out = append(out, in.A, in.B)
	case vm.OpSelect, vm.OpAStore, vm.OpVStore2:
		out = append(out, in.A, in.B, in.C)
	case vm.OpALoad, vm.OpVLoad2:
		out = append(out, in.A, in.B)
	case vm.OpRet:
		if in.Sub != 0 {
			out = append(out, in.A)
		}
	case mDbg:
		if in.Sub == dbgVReg {
			out = append(out, in.A)
		}
	}
	return out
}

// defOf returns the vreg the instruction writes, or -1.
func defOf(in *MInstr) int {
	switch in.Op {
	case vm.OpConst, vm.OpMov, vm.OpBin, vm.OpBinImm, vm.OpNeg, vm.OpNot,
		vm.OpSelect, vm.OpLoadSlot, vm.OpLoadParam, vm.OpGLoad,
		vm.OpNewArr, vm.OpALoad, vm.OpLen, vm.OpVLoad2, vm.OpVBin,
		vm.OpCall:
		return in.D
	}
	return -1
}

// hasSideEffect reports whether the instruction must not be reordered
// past other side-effecting instructions or removed.
func hasSideEffect(in *MInstr) bool {
	switch in.Op {
	case vm.OpStoreSlot, vm.OpGStore, vm.OpAStore, vm.OpVStore2,
		vm.OpArg, vm.OpCall, vm.OpPrint, vm.OpRet, vm.OpJmp, vm.OpBr,
		vm.OpProlog, vm.OpNewArr:
		return true
	}
	return false
}

// isMemRead reports whether the instruction reads mutable memory.
func isMemRead(in *MInstr) bool {
	switch in.Op {
	case vm.OpLoadSlot, vm.OpGLoad, vm.OpALoad, vm.OpVLoad2, vm.OpLoadParam:
		return true
	}
	return false
}
