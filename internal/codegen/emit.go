package codegen

import (
	"time"

	"debugtuner/internal/ast"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/ir"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/vm"
)

// Compile lowers an optimized IR program all the way to an executable
// binary with its debug-information section. The IR program is consumed
// (critical edges are split in place). With telemetry enabled, each
// optional backend stage reports its wall time and debug damage to the
// ledger under the toggle name that enabled it.
func Compile(prog *ir.Program, opts Options) *vm.Binary {
	snk := telemetry.Active()
	span := telemetry.Begin("codegen", "compile")
	fidx := map[string]int64{}
	for i, f := range prog.Funcs {
		fidx[f.Name] = int64(i)
	}
	var mfuncs []*MFunc
	for _, f := range prog.Funcs {
		mf := lowerFunc(prog, f, &opts, fidx)
		if opts.MachineSink {
			runStage(snk, &opts, "machine-sink", mf, func() { machineSink(mf) })
		}
		// Register allocation runs on reverse postorder — inlining
		// appends callee blocks far from their call sites, and the
		// linear-scan intervals must not be stretched by accidental
		// block placement. The optional hot-path layout is a post-RA
		// pass, as in LLVM's MachineBlockPlacement.
		if opts.Schedule {
			runStage(snk, &opts, "schedule", mf, func() { schedule(mf) })
		}
		rpoSort(mf)
		regalloc(mf, &opts)
		if opts.Layout {
			runStage(snk, &opts, "layout", mf, func() { layout(mf) })
		}
		if opts.ShrinkWrap {
			t0 := time.Now()
			shrinkWrap(mf)
			shrinkWrapDamage(snk, &opts, mf, time.Since(t0))
		} else {
			mf.prologBlock = mf.Blocks[0]
		}
		if opts.CrossJump {
			runStage(snk, &opts, "crossjump", mf, func() { crossJump(mf) })
		}
		mfuncs = append(mfuncs, mf)
	}
	bin := emit(prog, mfuncs, &opts)
	span.End()
	return bin
}

// emit assembles the machine functions into a flat binary and builds the
// debug tables.
func emit(prog *ir.Program, mfuncs []*MFunc, opts *Options) *vm.Binary {
	bin := &vm.Binary{}
	for _, g := range prog.Globals {
		bin.Globals = append(bin.Globals, vm.GlobalInfo{
			Name: g.Name, IsArray: g.IsArray, Init: g.Init,
		})
	}
	dbg := &debuginfo.Table{ForProfiling: opts.ForProfiling}

	type fixup struct {
		idx    int
		target *MBlock
	}
	for fi, mf := range mfuncs {
		start := len(bin.Code)
		var fixups []fixup
		blockAddr := map[*MBlock]int{}

		// Insert the prologue at the front of its block.
		if mf.prologBlock != nil {
			pb := mf.prologBlock
			pb.Instrs = append([]*MInstr{{
				Op: vm.OpProlog, A: -1, B: -1, C: -1, D: -1,
			}}, pb.Instrs...)
		}

		// Location-list builder state.
		homeSlot := map[int]int{} // symID -> home slot
		for slot, sym := range mf.SlotVars {
			if sym != nil {
				if _, dup := homeSlot[sym.ID]; !dup {
					homeSlot[sym.ID] = slot
				}
			}
		}
		varRec := map[int]*debuginfo.Variable{}
		getVar := func(sym *ast.Symbol) *debuginfo.Variable {
			r := varRec[sym.ID]
			if r == nil {
				r = &debuginfo.Variable{
					SymID: int32(sym.ID), Name: sym.Name, FuncIdx: int32(fi),
				}
				varRec[sym.ID] = r
			}
			return r
		}
		open := map[int]*debuginfo.LocEntry{} // symID -> open entry
		closeEntry := func(symID, addr int) {
			if e := open[symID]; e != nil {
				e.End = uint32(addr)
				delete(open, symID)
			}
		}
		openEntry := func(sym *ast.Symbol, addr int, kind debuginfo.LocKind, operand int64) {
			closeEntry(sym.ID, addr)
			r := getVar(sym)
			r.Entries = append(r.Entries, debuginfo.LocEntry{
				Start: uint32(addr), End: uint32(addr), Kind: kind, Operand: operand,
			})
			open[sym.ID] = &r.Entries[len(r.Entries)-1]
		}
		// Precise-policy clobber: close register entries when the
		// register is overwritten.
		clobberReg := func(r, addr int) {
			if opts.OptimisticRanges {
				return
			}
			for sid, e := range open {
				if e.Kind == debuginfo.LocReg && e.Operand == int64(r) {
					closeEntry(sid, addr+1)
				}
			}
		}
		clobberSlot := func(s, addr int) {
			if opts.OptimisticRanges {
				return
			}
			for sid, e := range open {
				if e.Kind == debuginfo.LocSpill && e.Operand == int64(s) {
					closeEntry(sid, addr+1)
				}
			}
		}

		prologueEnd := start
		var lastEmitted *vm.Instr
		var pendingPre []vm.OwnerTag
		for _, b := range mf.Blocks {
			blockAddr[b] = len(bin.Code)
			lastEmitted = nil
			for _, in := range b.Instrs {
				if in.Op == mDbg {
					sym := in.Var
					if _, isHome := homeSlot[sym.ID]; isHome {
						continue // the -O0 home slot location wins
					}
					addr := len(bin.Code)
					switch in.Sub {
					case dbgNone:
						openEntry(sym, addr, debuginfo.LocNone, 0)
					case dbgVReg:
						openEntry(sym, addr, debuginfo.LocReg, int64(in.A))
						tag := vm.OwnerTag{Reg: int8(in.A), Slot: -1, Var: int32(sym.ID) + 1}
						if lastEmitted != nil {
							lastEmitted.Own = append(lastEmitted.Own, tag)
						} else {
							tag.Pre = true
							pendingPre = append(pendingPre, tag)
						}
					case dbgConst:
						openEntry(sym, addr, debuginfo.LocConst, in.Imm)
					case dbgSpill:
						openEntry(sym, addr, debuginfo.LocSpill, in.Imm)
						tag := vm.OwnerTag{Reg: -1, Slot: int32(in.Imm), Var: int32(sym.ID) + 1}
						if lastEmitted != nil {
							lastEmitted.Own = append(lastEmitted.Own, tag)
						} else {
							tag.Pre = true
							pendingPre = append(pendingPre, tag)
						}
					}
					continue
				}
				addr := len(bin.Code)
				out := vm.Instr{
					Op: in.Op, Sub: in.Sub, Imm: in.Imm, Line: int32(in.Line),
				}
				setReg := func(dst *uint8, v int) {
					if v >= 0 {
						*dst = uint8(v)
					}
				}
				setReg(&out.A, in.A)
				setReg(&out.B, in.B)
				setReg(&out.C, in.C)
				setReg(&out.D, in.D)
				switch in.Op {
				case vm.OpProlog:
					prologueEnd = addr + 1
				case vm.OpJmp:
					// handled below (fallthrough elision)
				case vm.OpBr:
				}
				if d := defOf(in); d >= 0 {
					clobberReg(d, addr)
				}
				if in.Op == vm.OpStoreSlot {
					clobberSlot(int(in.Imm), addr)
				}
				if in.Op == vm.OpJmp || in.Op == vm.OpBr {
					// emit with fixup below
				}
				if len(pendingPre) > 0 {
					out.Own = append(out.Own, pendingPre...)
					pendingPre = nil
				}
				bin.Code = append(bin.Code, out)
				lastEmitted = &bin.Code[len(bin.Code)-1]
				switch in.Op {
				case vm.OpJmp:
					fixups = append(fixups, fixup{addr, b.Succs[0]})
				case vm.OpBr:
					fixups = append(fixups, fixup{addr, b.Succs[0]})
				}
			}
			// Control-flow continuation: a Br falls through to Succs[1].
			// When layout placed the taken side next instead, invert the
			// branch (jump-if-zero to the false side) so the hot edge
			// falls through; otherwise append a jump for the false side.
			if t := b.Term(); t != nil && t.Op == vm.OpBr {
				next := nextBlock(mf, b)
				brIdx := len(bin.Code) - 1
				switch {
				case next == b.Succs[1]:
					// natural fallthrough
				case next == b.Succs[0]:
					bin.Code[brIdx].Sub = 1
					fixups[len(fixups)-1].target = b.Succs[1]
				default:
					addr := len(bin.Code)
					bin.Code = append(bin.Code, vm.Instr{Op: vm.OpJmp})
					fixups = append(fixups, fixup{addr, b.Succs[1]})
				}
			}
		}
		end := len(bin.Code)
		// Elide jumps to the immediately following address.
		// (Done by rewriting to Nop is wasteful; instead patch targets
		// first, then compact.)
		for _, fx := range fixups {
			bin.Code[fx.idx].Imm = int64(blockAddr[fx.target])
		}
		compactFallthroughs(bin, start, &end, varRec, dbg)

		bin.Funcs = append(bin.Funcs, vm.FuncInfo{
			Name: mf.Name, Start: start, End: end,
			NumSlots: mf.NumSlots, NParams: mf.NParams,
		})
		fd := debuginfo.FuncDebug{
			Name: mf.Name, Start: uint32(start), End: uint32(end),
			StartLine: int32(mf.StartLine), PrologueEnd: uint32(prologueEnd),
		}
		if opts.ForProfiling {
			fd.LinkageName = mf.Name
			// -fdebug-info-for-profiling guarantees the entry address
			// maps to the function's start line even if the first
			// instruction is artificial.
			if start < len(bin.Code) && bin.Code[start].Line == 0 {
				bin.Code[start].Line = int32(mf.StartLine)
			}
		}
		dbg.Funcs = append(dbg.Funcs, fd)

		// Close open entries at function end and register variables.
		for sid := range open {
			closeEntry(sid, end)
		}
		// Home-slot variables: whole-function slot locations (the DWARF
		// -O0 whole-scope defect, intentionally reproduced).
		for slot, sym := range mf.SlotVars {
			if sym == nil {
				continue
			}
			if homeSlot[sym.ID] != slot {
				continue
			}
			r := getVar(sym)
			r.Entries = append(r.Entries, debuginfo.LocEntry{
				Start: uint32(start), End: uint32(end),
				Kind: debuginfo.LocSlot, Operand: int64(slot),
			})
		}
		// Deterministic variable order: by symbol ID.
		for sid := 0; sid < len(prog.Symbols); sid++ {
			if r := varRec[sid]; r != nil && len(r.Entries) > 0 {
				dbg.Vars = append(dbg.Vars, *r)
			}
		}
	}

	// Globals: static storage, always readable.
	for _, g := range prog.Globals {
		if g.Sym == nil {
			continue
		}
		dbg.Vars = append(dbg.Vars, debuginfo.Variable{
			SymID: int32(g.Sym.ID), Name: g.Name, FuncIdx: -1,
			Entries: []debuginfo.LocEntry{{
				Start: 0, End: uint32(len(bin.Code)),
				Kind: debuginfo.LocGlobal, Operand: int64(g.Index),
			}},
		})
	}

	// Line table: one row per change point.
	prevLine := int32(-1)
	for i := range bin.Code {
		if l := bin.Code[i].Line; l != prevLine {
			dbg.Lines = append(dbg.Lines, debuginfo.LineEntry{
				Addr: uint32(i), Line: l,
			})
			prevLine = l
		}
	}
	bin.Debug = dbg.Encode()
	return bin
}

func nextBlock(mf *MFunc, b *MBlock) *MBlock {
	for i, x := range mf.Blocks {
		if x == b && i+1 < len(mf.Blocks) {
			return mf.Blocks[i+1]
		}
	}
	return nil
}

// compactFallthroughs removes jumps whose target is the next address,
// remapping all addresses (jump targets, location entries) accordingly.
func compactFallthroughs(bin *vm.Binary, start int, end *int, varRec map[int]*debuginfo.Variable, dbg *debuginfo.Table) {
	n := *end - start
	drop := make([]bool, n)
	for i := start; i < *end; i++ {
		if bin.Code[i].Op == vm.OpJmp && bin.Code[i].Imm == int64(i+1) {
			// Keep owner tags by migrating them to the next instruction.
			if len(bin.Code[i].Own) > 0 && i+1 < *end {
				for _, t := range bin.Code[i].Own {
					t.Pre = true
					bin.Code[i+1].Own = append(bin.Code[i+1].Own, t)
				}
			}
			drop[i-start] = true
		}
	}
	// New address mapping within [start, end).
	remap := make([]int, n+1)
	w := start
	for i := 0; i < n; i++ {
		remap[i] = w
		if !drop[i] {
			w++
		}
	}
	remap[n] = w
	if w == *end {
		return
	}
	mapAddr := func(a int) int {
		if a < start || a > *end {
			return a
		}
		return remap[a-start]
	}
	// Rewrite code.
	out := bin.Code[:start]
	for i := start; i < *end; i++ {
		if drop[i-start] {
			continue
		}
		in := bin.Code[i]
		if in.Op == vm.OpJmp || in.Op == vm.OpBr {
			in.Imm = int64(mapAddr(int(in.Imm)))
		}
		out = append(out, in)
	}
	bin.Code = out
	// Rewrite open location entries built so far for this function.
	for _, r := range varRec {
		for k := range r.Entries {
			r.Entries[k].Start = uint32(mapAddr(int(r.Entries[k].Start)))
			r.Entries[k].End = uint32(mapAddr(int(r.Entries[k].End)))
		}
	}
	*end = w
}
