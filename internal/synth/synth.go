// Package synth generates random MiniC programs, standing in for Csmith
// (§II): expression-heavy synthetic code with artificial control flow
// whose fate under optimization differs measurably from real-world
// programs — much of it folds away entirely, which is the paper's
// argument for preferring the real-world suite.
//
// Generated programs are deterministic per seed, free of unbounded
// loops (every loop has a structural bound), and total under MiniC
// semantics, so they double as differential-testing inputs for the
// compiler itself.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options bounds the generated program.
type Options struct {
	Funcs    int // helper functions (plus main)
	MaxDepth int // statement nesting depth
	MaxStmts int // statements per block
	MaxVars  int // locals per function
	MaxExpr  int // expression depth
	Arrays   int // global arrays
	Globals  int // global scalars

	// LoopBias and CallBias (0..8, 0 = off) skew statement choice toward
	// loops and expression choice toward helper calls — the mutation
	// hooks a feedback-directed campaign turns up when loop or inliner
	// passes historically produced findings. At 0 no extra random draw
	// happens, so default-option generation is byte-identical to the
	// historical generator for every seed.
	LoopBias int
	CallBias int
}

// DefaultOptions mirrors a Csmith-ish profile.
func DefaultOptions() Options {
	return Options{
		Funcs: 4, MaxDepth: 3, MaxStmts: 5, MaxVars: 6,
		MaxExpr: 4, Arrays: 2, Globals: 3,
	}
}

type gen struct {
	rng  *rand.Rand
	opts Options
	sb   strings.Builder
	ind  int

	globals []string
	arrays  []string
	funcs   []funcSig
	locals  []string
	loopVar int
}

type funcSig struct {
	name   string
	params int
}

// Generate produces one program for the seed.
func Generate(seed int64, opts Options) string {
	g := &gen{rng: rand.New(rand.NewSource(seed)), opts: opts}
	g.emitf("// synthetic program, seed %d", seed)
	for i := 0; i < opts.Globals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		g.emitf("var %s: int = %d;", name, g.rng.Intn(201)-100)
	}
	for i := 0; i < opts.Arrays; i++ {
		name := fmt.Sprintf("arr%d", i)
		g.arrays = append(g.arrays, name)
		g.emitf("var %s: int[] = new int[%d];", name, 8+g.rng.Intn(24))
	}
	for i := 0; i < opts.Funcs; i++ {
		g.genFunc(i)
	}
	g.genMain()
	return g.sb.String()
}

func (g *gen) emitf(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("\t", g.ind))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *gen) genFunc(i int) {
	params := 1 + g.rng.Intn(3)
	sig := funcSig{name: fmt.Sprintf("f%d", i), params: params}
	var ps []string
	g.locals = nil
	for p := 0; p < params; p++ {
		name := fmt.Sprintf("p%d", p)
		ps = append(ps, name+": int")
		g.locals = append(g.locals, name)
	}
	g.emitf("func %s(%s): int {", sig.name, strings.Join(ps, ", "))
	g.ind++
	nv := 1 + g.rng.Intn(g.opts.MaxVars)
	for v := 0; v < nv; v++ {
		name := fmt.Sprintf("v%d", v)
		g.emitf("var %s: int = %s;", name, g.expr(g.opts.MaxExpr))
		g.locals = append(g.locals, name)
	}
	g.block(g.opts.MaxDepth)
	g.emitf("return %s;", g.expr(2))
	g.ind--
	g.emitf("}")
	// Helpers may call earlier helpers only, keeping the call graph
	// acyclic so every program terminates.
	g.funcs = append(g.funcs, sig)
}

func (g *gen) genMain() {
	g.locals = nil
	g.emitf("func main() {")
	g.ind++
	nv := 2 + g.rng.Intn(g.opts.MaxVars)
	for v := 0; v < nv; v++ {
		name := fmt.Sprintf("m%d", v)
		g.emitf("var %s: int = %s;", name, g.expr(g.opts.MaxExpr))
		g.locals = append(g.locals, name)
	}
	g.block(g.opts.MaxDepth)
	for _, l := range g.locals {
		if g.rng.Intn(2) == 0 {
			g.emitf("print(%s);", l)
		}
	}
	for _, gl := range g.globals {
		g.emitf("print(%s);", gl)
	}
	for _, a := range g.arrays {
		g.emitf("print(%s[%d]);", a, g.rng.Intn(8))
	}
	g.ind--
	g.emitf("}")
}

// block emits a statement sequence.
func (g *gen) block(depth int) {
	n := 1 + g.rng.Intn(g.opts.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *gen) stmt(depth int) {
	choice := g.rng.Intn(10)
	if depth <= 0 && choice >= 5 {
		choice = g.rng.Intn(5)
	}
	// The bias draw is guarded so unbiased generation consumes exactly
	// the historical random stream.
	if g.opts.LoopBias > 0 && depth > 0 && g.rng.Intn(10) < g.opts.LoopBias {
		choice = 7
	}
	switch choice {
	case 0, 1: // assignment
		if len(g.locals) > 0 {
			g.emitf("%s = %s;", g.pick(g.locals), g.expr(g.opts.MaxExpr))
			return
		}
		fallthrough
	case 2: // global store
		if len(g.globals) > 0 {
			g.emitf("%s = %s;", g.pick(g.globals), g.expr(g.opts.MaxExpr))
			return
		}
		fallthrough
	case 3: // array store
		if len(g.arrays) > 0 {
			g.emitf("%s[%s] = %s;", g.pick(g.arrays), g.idx(), g.expr(3))
			return
		}
		fallthrough
	case 4: // print
		g.emitf("print(%s);", g.expr(2))
	case 5, 6: // if / if-else
		g.emitf("if (%s) {", g.expr(3))
		g.ind++
		g.block(depth - 1)
		g.ind--
		if g.rng.Intn(2) == 0 {
			g.emitf("} else {")
			g.ind++
			g.block(depth - 1)
			g.ind--
		}
		g.emitf("}")
	case 7, 8: // bounded for loop
		lv := fmt.Sprintf("i%d", g.loopVar)
		g.loopVar++
		bound := 2 + g.rng.Intn(6)
		g.emitf("for (var %s: int = 0; %s < %d; %s = %s + 1) {", lv, lv, bound, lv, lv)
		g.ind++
		// The loop variable is deliberately NOT added to the assignable
		// locals: a generated assignment to it could unbound the loop.
		g.block(depth - 1)
		if g.rng.Intn(4) == 0 {
			g.emitf("if (%s > %d) { break; }", g.expr(2), g.rng.Intn(50))
		}
		g.ind--
		g.emitf("}")
	case 9: // bounded while with explicit counter
		lv := fmt.Sprintf("w%d", g.loopVar)
		g.loopVar++
		g.emitf("var %s: int = %d;", lv, 1+g.rng.Intn(5))
		g.emitf("while (%s > 0) {", lv)
		g.ind++
		g.block(depth - 1)
		g.emitf("%s = %s - 1;", lv, lv)
		g.ind--
		g.emitf("}")
	}
}

func (g *gen) pick(s []string) string { return s[g.rng.Intn(len(s))] }

// idx produces an always-valid-ish index expression (MiniC tolerates OOB
// anyway; small values keep stores observable).
func (g *gen) idx() string {
	if len(g.locals) > 0 && g.rng.Intn(2) == 0 {
		return fmt.Sprintf("(%s & 7)", g.pick(g.locals))
	}
	return fmt.Sprintf("%d", g.rng.Intn(8))
}

var binOps = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"<", "<=", ">", ">=", "==", "!="}

func (g *gen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		return g.leaf()
	}
	if g.opts.CallBias > 0 && len(g.funcs) > 0 && g.rng.Intn(10) < g.opts.CallBias {
		f := g.funcs[g.rng.Intn(len(g.funcs))]
		var args []string
		for i := 0; i < f.params; i++ {
			args = append(args, g.expr(depth-1))
		}
		return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(-%s)", g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(!%s)", g.expr(depth-1))
	case 2:
		// Short-circuit forms.
		op := "&&"
		if g.rng.Intn(2) == 0 {
			op = "||"
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 3:
		if len(g.funcs) > 0 {
			f := g.funcs[g.rng.Intn(len(g.funcs))]
			var args []string
			for i := 0; i < f.params; i++ {
				args = append(args, g.expr(depth-1))
			}
			return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
		}
		fallthrough
	case 4:
		if len(g.arrays) > 0 {
			return fmt.Sprintf("%s[%s]", g.pick(g.arrays), g.idx())
		}
		fallthrough
	default:
		op := binOps[g.rng.Intn(len(binOps))]
		// Shift amounts stay small to keep results interesting.
		if op == "<<" || op == ">>" {
			return fmt.Sprintf("(%s %s %d)", g.expr(depth-1), op, g.rng.Intn(6))
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	}
}

func (g *gen) leaf() string {
	switch g.rng.Intn(4) {
	case 0:
		if len(g.locals) > 0 {
			return g.pick(g.locals)
		}
	case 1:
		if len(g.globals) > 0 {
			return g.pick(g.globals)
		}
	}
	return fmt.Sprintf("%d", g.rng.Intn(41)-20)
}
