package synth

import (
	"math/rand"
	"strings"
	"testing"
)

// TestMutateDeterministic: same rng seed and weights produce the same
// profile; a fresh rng reproduces it.
func TestMutateDeterministic(t *testing.T) {
	w := Weights{Loops: 2, Calls: 1.5, Exprs: 1, Vars: 0.5, Stmts: 1}
	a := Mutate(rand.New(rand.NewSource(7)), DefaultOptions(), w)
	b := Mutate(rand.New(rand.NewSource(7)), DefaultOptions(), w)
	if a != b {
		t.Fatalf("same rng seed diverged: %+v vs %+v", a, b)
	}
	c := Mutate(rand.New(rand.NewSource(8)), DefaultOptions(), w)
	_ = c // different seed may or may not differ; only determinism is contractual
}

// TestMutateBounds: knobs stay inside generator-healthy ranges across
// extreme weights, and above-neutral weights arm the biases.
func TestMutateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		w := Weights{
			Loops: rng.Float64() * 4,
			Calls: rng.Float64() * 4,
			Exprs: rng.Float64() * 4,
			Vars:  rng.Float64() * 4,
			Stmts: rng.Float64() * 4,
		}
		o := Mutate(rng, DefaultOptions(), w)
		if o.Funcs < 1 || o.Funcs > 8 || o.MaxDepth < 1 || o.MaxDepth > 4 ||
			o.MaxStmts < 2 || o.MaxStmts > 8 || o.MaxVars < 2 || o.MaxVars > 10 ||
			o.MaxExpr < 1 || o.MaxExpr > 6 || o.Arrays < 1 || o.Arrays > 4 ||
			o.Globals < 1 || o.Globals > 6 {
			t.Fatalf("out-of-bounds profile %+v from weights %+v", o, w)
		}
		if o.LoopBias < 0 || o.LoopBias > 6 || o.CallBias < 0 || o.CallBias > 6 {
			t.Fatalf("bias out of range in %+v", o)
		}
		if w.Loops <= 1 && o.LoopBias != 0 {
			t.Fatalf("loop bias armed at neutral weight %v", w.Loops)
		}
		if w.Calls <= 1 && o.CallBias != 0 {
			t.Fatalf("call bias armed at neutral weight %v", w.Calls)
		}
	}
}

// TestMutatedProgramsStillGenerate: mutated profiles keep producing
// parseable-looking programs with a main and the bias constructs when
// heavily armed.
func TestMutatedProgramsStillGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := Weights{Loops: 3, Calls: 3, Exprs: 1, Vars: 1, Stmts: 1}
	sawLoop := false
	for seed := int64(0); seed < 10; seed++ {
		opts := Mutate(rng, DefaultOptions(), w)
		src := Generate(seed, opts)
		if !strings.Contains(src, "func main()") {
			t.Fatalf("seed %d: no main in mutated program", seed)
		}
		if strings.Contains(src, "for (") {
			sawLoop = true
		}
	}
	if !sawLoop {
		t.Fatal("loop bias 3+ produced no loops across 10 seeds")
	}
}

// TestZeroBiasByteCompat: DefaultOptions (biases zero) must generate
// byte-identical programs to the historical generator — the bias draws
// are guarded, consuming no randomness when off. Locked by comparing
// explicit zero-bias options against DefaultOptions.
func TestZeroBiasByteCompat(t *testing.T) {
	base := DefaultOptions()
	explicit := base
	explicit.LoopBias = 0
	explicit.CallBias = 0
	for seed := int64(0); seed < 20; seed++ {
		if Generate(seed, base) != Generate(seed, explicit) {
			t.Fatalf("seed %d: zero-bias generation not byte-stable", seed)
		}
	}
}
