package synth

import (
	"errors"
	"reflect"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
)

func TestDeterministicPerSeed(t *testing.T) {
	a := Generate(42, DefaultOptions())
	b := Generate(42, DefaultOptions())
	if a != b {
		t.Fatal("same seed produced different programs")
	}
	c := Generate(43, DefaultOptions())
	if a == c {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestGeneratedProgramsAreValid: over many seeds, every generated
// program must front-end cleanly, and the runnable ones must terminate
// within the interpreter budget — the generator's bounded-loop
// guarantee.
func TestGeneratedProgramsAreValid(t *testing.T) {
	ran, skipped := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		src := Generate(seed, DefaultOptions())
		info, err := pipeline.Frontend("s", []byte(src))
		if err != nil {
			t.Fatalf("seed %d: frontend: %v\n%s", seed, err, src)
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			t.Fatalf("seed %d: ir: %v", seed, err)
		}
		it := ir.NewInterp(ir0, 1<<22)
		if _, err := it.Call("main"); err != nil {
			// Budget-limited nested loops are acceptable, anything else
			// is a generator bug.
			if !errors.Is(err, ir.ErrBudget) {
				t.Fatalf("seed %d: %v", seed, err)
			}
			skipped++
			continue
		}
		ran++
		if len(it.Output()) == 0 {
			t.Errorf("seed %d: program has no observable output", seed)
		}
	}
	if ran < 20 {
		t.Fatalf("only %d of 60 seeds ran to completion (%d skipped)", ran, skipped)
	}
}

// TestSyntheticDiffersFromRealWorld reproduces the §II observation on a
// small scale: synthetic programs lose far more line coverage under
// optimization than the real-world suite subjects. This is the paper's
// core argument for the real-world suite.
func TestSyntheticDiffersFromRealWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// One synthetic program vs the expectations: at gcc-O2, optimized
	// synthetic code drops a large share of its lines because most of
	// it folds away.
	for seed := int64(0); seed < 40; seed++ {
		src := Generate(seed, Options{Funcs: 2, MaxDepth: 2, MaxStmts: 4,
			MaxVars: 5, MaxExpr: 4, Arrays: 1, Globals: 2})
		info, err := pipeline.Frontend("s", []byte(src))
		if err != nil {
			continue
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			continue
		}
		it := ir.NewInterp(ir0, 1<<21)
		if _, err := it.Call("main"); err != nil {
			continue
		}
		o0 := pipeline.Build(ir0, pipeline.MustConfig(pipeline.GCC, "O0"))
		o2 := pipeline.Build(ir0, pipeline.MustConfig(pipeline.GCC, "O2"))
		if len(o2.Code) >= len(o0.Code) {
			t.Errorf("seed %d: O2 did not shrink the synthetic program", seed)
		}
		return // one runnable witness is enough
	}
	t.Skip("no runnable seed in range")
}

func TestOptionsShapeOutput(t *testing.T) {
	small := Generate(7, Options{Funcs: 1, MaxDepth: 1, MaxStmts: 2,
		MaxVars: 2, MaxExpr: 2, Arrays: 1, Globals: 1})
	large := Generate(7, Options{Funcs: 6, MaxDepth: 3, MaxStmts: 6,
		MaxVars: 8, MaxExpr: 5, Arrays: 3, Globals: 5})
	if len(large) <= len(small) {
		t.Fatalf("larger options produced smaller program (%d vs %d)",
			len(large), len(small))
	}
	if reflect.DeepEqual(small, large) {
		t.Fatal("options ignored")
	}
}
