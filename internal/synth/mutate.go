package synth

import "math/rand"

// Weights bias candidate generation toward construct families. 1 is
// neutral; above 1 the family's knobs grow. The hunt campaign derives
// them from the telemetry damage ledger and its bucket history: loop
// passes that historically produced findings raise Loops, inliner
// damage raises Calls, and so on — the feedback signal that turns a
// random generator into a directed one.
type Weights struct {
	Loops float64 // loop statements and nesting depth
	Calls float64 // helper functions and call expressions
	Exprs float64 // expression depth
	Vars  float64 // locals, globals, arrays
	Stmts float64 // statements per block
}

// Neutral returns the all-ones weight vector.
func Neutral() Weights {
	return Weights{Loops: 1, Calls: 1, Exprs: 1, Vars: 1, Stmts: 1}
}

// Mutate derives a generation profile from base: each knob is scaled by
// its family weight and jittered ±1 from rng, clamped to bounds the
// generator stays healthy inside (a zero-function or zero-statement
// profile generates degenerate programs). Weights above neutral also
// arm the corresponding generation bias. Deterministic per rng state.
func Mutate(rng *rand.Rand, base Options, w Weights) Options {
	o := base
	o.Funcs = clampi(scalei(rng, base.Funcs, w.Calls), 1, 8)
	o.MaxDepth = clampi(scalei(rng, base.MaxDepth, w.Loops), 1, 4)
	o.MaxStmts = clampi(scalei(rng, base.MaxStmts, w.Stmts), 2, 8)
	o.MaxVars = clampi(scalei(rng, base.MaxVars, w.Vars), 2, 10)
	o.MaxExpr = clampi(scalei(rng, base.MaxExpr, w.Exprs), 1, 6)
	o.Arrays = clampi(scalei(rng, base.Arrays, w.Vars), 1, 4)
	o.Globals = clampi(scalei(rng, base.Globals, w.Vars), 1, 6)
	o.LoopBias = biasFor(w.Loops)
	o.CallBias = biasFor(w.Calls)
	return o
}

// scalei scales an integer knob by a weight with ±1 jitter. A weight
// of zero (an uninitialized family) is treated as neutral.
func scalei(rng *rand.Rand, v int, w float64) int {
	if w <= 0 {
		w = 1
	}
	jitter := rng.Intn(3) - 1
	return int(float64(v)*w+0.5) + jitter
}

// biasFor maps an above-neutral weight to a generation bias in 0..6.
func biasFor(w float64) int {
	if w <= 1 {
		return 0
	}
	return clampi(int((w-1)*4)+1, 1, 6)
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
