// Package lexer turns MiniC source text into a token stream.
//
// MiniC's lexical grammar is a small C-like one: identifiers, integer
// literals (decimal, hex, character), the usual arithmetic/logic/relational
// operators, and line/block comments.
package lexer

import "debugtuner/internal/source"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Keyword kinds follow the operator kinds.
const (
	EOF Kind = iota
	Ident
	Int // integer literal

	// Operators and punctuation.
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Amp      // &
	Pipe     // |
	Caret    // ^
	Shl      // <<
	Shr      // >>
	AmpAmp   // &&
	PipePipe // ||
	Not      // !
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	EqEq     // ==
	NotEq    // !=
	Assign   // =
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBrack   // [
	RBrack   // ]
	Comma    // ,
	Semi     // ;
	Colon    // :

	// Keywords.
	KwFunc
	KwVar
	KwIf
	KwElse
	KwWhile
	KwFor
	KwBreak
	KwContinue
	KwReturn
	KwInt
	KwVoid
	KwNew
	KwLen
	KwPrint
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Int: "integer",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Shl: "<<", Shr: ">>",
	AmpAmp: "&&", PipePipe: "||", Not: "!",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", EqEq: "==", NotEq: "!=",
	Assign: "=", LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Comma: ",", Semi: ";", Colon: ":",
	KwFunc: "func", KwVar: "var", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwBreak: "break",
	KwContinue: "continue", KwReturn: "return", KwInt: "int",
	KwVoid: "void", KwNew: "new", KwLen: "len", KwPrint: "print",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

var keywords = map[string]Kind{
	"func": KwFunc, "var": KwVar, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "break": KwBreak,
	"continue": KwContinue, "return": KwReturn, "int": KwInt,
	"void": KwVoid, "new": KwNew, "len": KwLen, "print": KwPrint,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for Ident and Int
	Val  int64  // decoded value for Int
	Pos  source.Pos
}
