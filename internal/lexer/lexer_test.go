package lexer

import (
	"testing"

	"debugtuner/internal/source"
)

func scan(t *testing.T, src string) []Token {
	t.Helper()
	l := New(source.NewFile("t", []byte(src)))
	toks := l.All()
	if err := l.Errors().Err(); err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func kinds(toks []Token) []Kind {
	out := make([]Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	toks := scan(t, "+ - * / % & | ^ << >> && || ! < <= > >= == != = ( ) { } [ ] , ; :")
	want := []Kind{Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret,
		Shl, Shr, AmpAmp, PipePipe, Not, Lt, Le, Gt, Ge, EqEq, NotEq,
		Assign, LParen, RParen, LBrace, RBrace, LBrack, RBrack, Comma,
		Semi, Colon, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	toks := scan(t, "func varx var int if0 if print len news new")
	want := []Kind{KwFunc, Ident, KwVar, KwInt, Ident, KwIf, KwPrint,
		KwLen, Ident, KwNew, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"42":     42,
		"0x10":   16,
		"0xFF":   255,
		"0Xab":   171,
		"'a'":    97,
		"'\\n'":  10,
		"'\\\\'": 92,
		"'\\0'":  0,
	}
	for src, want := range cases {
		toks := scan(t, src)
		if toks[0].Kind != Int || toks[0].Val != want {
			t.Errorf("%q => (%v, %d), want (Int, %d)", src, toks[0].Kind, toks[0].Val, want)
		}
	}
}

func TestComments(t *testing.T) {
	toks := scan(t, "a // line comment\nb /* block\ncomment */ c")
	got := kinds(toks)
	want := []Kind{Ident, Ident, Ident, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	// Positions must survive comments.
	if toks[1].Pos.Line != 2 || toks[2].Pos.Line != 3 {
		t.Errorf("positions wrong: %v %v", toks[1].Pos, toks[2].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "'x", "/* open", "0x"} {
		l := New(source.NewFile("t", []byte(src)))
		l.All()
		if l.Errors().Err() == nil {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New(source.NewFile("t", []byte("x")))
	l.Next()
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != EOF {
			t.Fatalf("expected EOF, got %v", tk.Kind)
		}
	}
}
