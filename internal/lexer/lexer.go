package lexer

import (
	"fmt"

	"debugtuner/internal/source"
)

// Lexer scans a source file into tokens.
type Lexer struct {
	file   *source.File
	src    []byte
	off    int
	errors source.ErrorList
}

// New creates a lexer for the file.
func New(f *source.File) *Lexer {
	return &Lexer{file: f, src: f.Content}
}

// Errors returns the diagnostics produced so far.
func (l *Lexer) Errors() source.ErrorList { return l.errors }

func (l *Lexer) errorf(off int, format string, args ...any) {
	l.errors = append(l.errors, &source.Error{
		File: l.file.Name,
		Pos:  l.file.PosFor(off),
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peek2() byte {
	if l.off+1 < len(l.src) {
		return l.src[l.off+1]
	}
	return 0
}

func isLetter(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isHexDigit(b byte) bool {
	return isDigit(b) || (b >= 'a' && b <= 'f') || (b >= 'A' && b <= 'F')
}

// skipSpace advances past whitespace and comments.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		switch b := l.src[l.off]; {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.off++
		case b == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case b == '/' && l.peek2() == '*':
			start := l.off
			l.off += 2
			for l.off < len(l.src) && !(l.src[l.off] == '*' && l.peek2() == '/') {
				l.off++
			}
			if l.off >= len(l.src) {
				l.errorf(start, "unterminated block comment")
				return
			}
			l.off += 2
		default:
			return
		}
	}
}

// Next returns the next token; at end of input it returns EOF forever.
func (l *Lexer) Next() Token {
	l.skipSpace()
	start := l.off
	pos := l.file.PosFor(start)
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	b := l.src[l.off]
	switch {
	case isLetter(b):
		for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		text := string(l.src[start:l.off])
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}
		}
		return Token{Kind: Ident, Text: text, Pos: pos}
	case isDigit(b):
		return l.scanNumber(start, pos)
	case b == '\'':
		return l.scanChar(start, pos)
	}
	l.off++
	two := func(k Kind) Token {
		l.off++
		return Token{Kind: k, Text: string(l.src[start:l.off]), Pos: pos}
	}
	one := func(k Kind) Token {
		return Token{Kind: k, Text: string(l.src[start:l.off]), Pos: pos}
	}
	switch b {
	case '+':
		return one(Plus)
	case '-':
		return one(Minus)
	case '*':
		return one(Star)
	case '/':
		return one(Slash)
	case '%':
		return one(Percent)
	case '^':
		return one(Caret)
	case '&':
		if l.peek() == '&' {
			return two(AmpAmp)
		}
		return one(Amp)
	case '|':
		if l.peek() == '|' {
			return two(PipePipe)
		}
		return one(Pipe)
	case '<':
		if l.peek() == '<' {
			return two(Shl)
		}
		if l.peek() == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if l.peek() == '>' {
			return two(Shr)
		}
		if l.peek() == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '=':
		if l.peek() == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '!':
		if l.peek() == '=' {
			return two(NotEq)
		}
		return one(Not)
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBrack)
	case ']':
		return one(RBrack)
	case ',':
		return one(Comma)
	case ';':
		return one(Semi)
	case ':':
		return one(Colon)
	}
	l.errorf(start, "unexpected character %q", string(b))
	return l.Next()
}

func (l *Lexer) scanNumber(start int, pos source.Pos) Token {
	var val int64
	if l.src[l.off] == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.off += 2
		digStart := l.off
		for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
			d := l.src[l.off]
			var v int64
			switch {
			case isDigit(d):
				v = int64(d - '0')
			case d >= 'a':
				v = int64(d-'a') + 10
			default:
				v = int64(d-'A') + 10
			}
			val = val<<4 | v // wraps silently, matching MiniC's wrapping ints
			l.off++
		}
		if l.off == digStart {
			l.errorf(start, "malformed hex literal")
		}
	} else {
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			val = val*10 + int64(l.src[l.off]-'0')
			l.off++
		}
	}
	return Token{Kind: Int, Text: string(l.src[start:l.off]), Val: val, Pos: pos}
}

// scanChar scans a character literal like 'a' or '\n'; its value is the
// byte value as an int.
func (l *Lexer) scanChar(start int, pos source.Pos) Token {
	l.off++ // opening quote
	var val int64
	switch {
	case l.off >= len(l.src):
		l.errorf(start, "unterminated character literal")
		return Token{Kind: Int, Pos: pos}
	case l.src[l.off] == '\\':
		l.off++
		if l.off < len(l.src) {
			switch l.src[l.off] {
			case 'n':
				val = '\n'
			case 't':
				val = '\t'
			case 'r':
				val = '\r'
			case '0':
				val = 0
			case '\\':
				val = '\\'
			case '\'':
				val = '\''
			default:
				l.errorf(start, "unknown escape %q", string(l.src[l.off]))
			}
			l.off++
		}
	default:
		val = int64(l.src[l.off])
		l.off++
	}
	if l.off < len(l.src) && l.src[l.off] == '\'' {
		l.off++
	} else {
		l.errorf(start, "unterminated character literal")
	}
	return Token{Kind: Int, Text: string(l.src[start:l.off]), Val: val, Pos: pos}
}

// All scans the whole file and returns the token slice ending with EOF.
func (l *Lexer) All() []Token {
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks
		}
	}
}
